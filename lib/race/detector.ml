module Tstate = T11r_mem.Tstate

(* Shadow state is packed for the hot path: the last write is a single
   immediate int [epoch lsl tid_bits lor tid] (-1 when there has been
   no write yet), and the reads-since-last-write clock is a plain int
   array indexed by tid, cleared with Array.fill on the next write.
   Neither a read nor a write of an already-sized var allocates. *)

let tid_bits = 20
let tid_mask = (1 lsl tid_bits) - 1

(* Largest epoch the packed word can hold without colliding with the
   tid field or the [-1] "no write" sentinel. *)
let max_epoch = max_int asr tid_bits

type var = {
  mutable id : int;
  mutable name : string;
  mutable w_packed : int; (* epoch lsl tid_bits lor tid; -1 = no write *)
  mutable reads : int array; (* tid -> epoch of read since last write *)
  mutable nreads : int; (* live prefix of [reads] (rest is zero) *)
}

type t = {
  mutable next_var : int;
  mutable reports_rev : Report.t list;
  mutable n_reports : int;
  seen : (string * Report.kind * int * int, unit) Hashtbl.t;
  mutable callbacks : (Report.t -> unit) list;
  (* Access streaming for the offline predictive analysis: one branch
     per shadow check when unset, so every configuration that does not
     capture decisions pays nothing. *)
  mutable acc_cb : (var -> tid:int -> write:bool -> unit) option;
  mutable suppressions : string list;
  mutable suppressed_count : int;
  mutable checks : int; (* shadow-state checks (one per read/write) *)
  (* Registry of every var ever created, indexed by id, for in-place
     recycling after [reset] (ids restart at 0). *)
  mutable reg : var array;
  mutable reg_n : int;
}

let create () =
  {
    next_var = 0;
    reports_rev = [];
    n_reports = 0;
    seen = Hashtbl.create 16;
    callbacks = [];
    acc_cb = None;
    suppressions = [];
    suppressed_count = 0;
    checks = 0;
    reg = [||];
    reg_n = 0;
  }

let reset t =
  t.next_var <- 0;
  t.reports_rev <- [];
  t.n_reports <- 0;
  Hashtbl.clear t.seen;
  t.callbacks <- [];
  t.acc_cb <- None;
  t.suppressions <- [];
  t.suppressed_count <- 0;
  t.checks <- 0

let checks t = t.checks

(* The packed representation silently truncates out-of-range ids and
   epochs (a tid >= 2^20 bleeds into the epoch field; an epoch beyond
   [max_epoch] wraps), corrupting shadow state for every later access.
   Better to refuse loudly — the bound is far beyond any simulated
   workload, so hitting it is a harness bug. *)
let check_packable (st : Tstate.t) =
  if st.Tstate.tid land lnot tid_mask <> 0 then
    failwith
      (Printf.sprintf
         "Detector: thread id %d exceeds the packed shadow-state limit of \
          %d threads (2^%d)"
         st.Tstate.tid (tid_mask + 1) tid_bits);
  let epoch = Tstate.epoch st in
  if epoch < 0 || epoch > max_epoch then
    failwith
      (Printf.sprintf
         "Detector: epoch %d of thread %d exceeds the packed shadow-state \
          limit of %d"
         epoch st.Tstate.tid max_epoch)

let set_suppressions t pats = t.suppressions <- pats
let suppressed_count t = t.suppressed_count

(* tsan-suppression-style matching: exact name, or a '*'-terminated
   prefix pattern ("scoreboard*"). *)
let suppressed t var =
  List.exists
    (fun pat ->
      let n = String.length pat in
      if n > 0 && pat.[n - 1] = '*' then
        let prefix = String.sub pat 0 (n - 1) in
        String.length var >= n - 1 && String.sub var 0 (n - 1) = prefix
      else pat = var)
    t.suppressions

let register t v =
  if t.reg_n >= Array.length t.reg then begin
    let a = Array.make (max 8 (2 * Array.length t.reg)) v in
    Array.blit t.reg 0 a 0 t.reg_n;
    t.reg <- a
  end;
  t.reg.(t.reg_n) <- v;
  t.reg_n <- t.reg_n + 1

let fresh_var t ~name =
  let id = t.next_var in
  t.next_var <- id + 1;
  if id < t.reg_n then begin
    let v = t.reg.(id) in
    v.id <- id;
    v.name <- name;
    v.w_packed <- -1;
    (* Clear the FULL array, not just [nreads]: stale epochs below a
       regrown [nreads] would otherwise surface as phantom reads. *)
    Array.fill v.reads 0 (Array.length v.reads) 0;
    v.nreads <- 0;
    v
  end
  else begin
    let v = { id; name; w_packed = -1; reads = [||]; nreads = 0 } in
    register t v;
    v
  end

let var_name v = v.name
let var_id v = v.id

let emit t (r : Report.t) =
  if suppressed t r.var then t.suppressed_count <- t.suppressed_count + 1
  else
    let key = (r.var, r.kind, r.first_tid, r.second_tid) in
    if not (Hashtbl.mem t.seen key) then begin
      Hashtbl.replace t.seen key ();
      t.reports_rev <- r :: t.reports_rev;
      t.n_reports <- t.n_reports + 1;
      List.iter (fun f -> f r) t.callbacks
    end

(* -1 if the last write is ordered before [st] (or there is none),
   otherwise the racing writer's tid. *)
let write_unordered (st : Tstate.t) packed =
  if packed < 0 then -1
  else
    let wtid = packed land tid_mask in
    if wtid <> st.Tstate.tid && packed asr tid_bits > Tstate.clock_get st wtid
    then wtid
    else -1

let ensure_reads v tid =
  let n = Array.length v.reads in
  if tid >= n then begin
    let a = Array.make (max 4 (tid + 1)) 0 in
    Array.blit v.reads 0 a 0 n;
    v.reads <- a
  end;
  if tid >= v.nreads then v.nreads <- tid + 1

let read t v ~(st : Tstate.t) =
  t.checks <- t.checks + 1;
  check_packable st;
  (match t.acc_cb with
  | None -> ()
  | Some f -> f v ~tid:st.Tstate.tid ~write:false);
  let wtid = write_unordered st v.w_packed in
  if wtid >= 0 then
    emit t
      {
        var = v.name;
        kind = Write_read;
        first_tid = wtid;
        second_tid = st.Tstate.tid;
      };
  ensure_reads v st.Tstate.tid;
  v.reads.(st.Tstate.tid) <- Tstate.epoch st

let write t v ~(st : Tstate.t) =
  t.checks <- t.checks + 1;
  check_packable st;
  (match t.acc_cb with
  | None -> ()
  | Some f -> f v ~tid:st.Tstate.tid ~write:true);
  let wtid = write_unordered st v.w_packed in
  if wtid >= 0 then
    emit t
      {
        var = v.name;
        kind = Write_write;
        first_tid = wtid;
        second_tid = st.Tstate.tid;
      };
  (* Any read since the last write that is not ordered before this write
     races with it. Ascending tid = the report order of the old
     Vclock-based representation. *)
  for rtid = 0 to v.nreads - 1 do
    let repoch = v.reads.(rtid) in
    if repoch > 0 && rtid <> st.Tstate.tid && repoch > Tstate.clock_get st rtid
    then
      emit t
        {
          var = v.name;
          kind = Read_write;
          first_tid = rtid;
          second_tid = st.Tstate.tid;
        }
  done;
  v.w_packed <- (Tstate.epoch st lsl tid_bits) lor st.Tstate.tid;
  if v.nreads > 0 then begin
    Array.fill v.reads 0 v.nreads 0;
    v.nreads <- 0
  end

let reports t = List.rev t.reports_rev
let report_count t = t.n_reports
let racy t = t.n_reports > 0
let on_report t f = t.callbacks <- f :: t.callbacks
let set_access_hook t f = t.acc_cb <- f
