(* Offline predictive race analysis. See the .mli for the model; the
   short version: replay one recorded run symbolically, build two
   happens-before approximations over its events (the *hard* order no
   reordering can break, and the *relaxed* order every feasible
   reordering must respect), intersect with per-access locksets, and
   classify every conflicting non-atomic access pair as impossible /
   May / Must — constructing, for each Must pair, a concrete witness
   schedule a guided replay can attempt.

   Clock representation: an event's happens-before past is an int
   array indexed by thread, where [c.(t) = p] means positions
   [0 .. p-1] of thread [t] are covered. "Position p of thread t" is
   the program point after t's p-th visible op (position 0 = before
   the first one); non-atomic accesses carry their position directly
   ([acc.a_pos]). An access (t, p) is covered by clock [c] iff
   [c.(t) >= p + 1]; *event* p of thread t is covered iff
   [c.(t) >= p]. *)

module Vclock = T11r_util.Vclock

type access_kind = A_read | A_write | A_update

type foot =
  | P_local
  | P_atomic of int * access_kind
  | P_fence
  | P_sync of int * int
  | P_spawn of int
  | P_join of int
  | P_syscall of int
  | P_global

type lockev = L_none | L_acquire of int | L_release of int | L_blocked of int

type step = {
  s_tid : int;
  s_enabled : int array;
  s_foot : foot;
  s_rand : bool;
  s_clock : Vclock.t;
  s_lock : lockev;
}

type acc = {
  a_tick : int;
  a_tid : int;
  a_pos : int;
  a_var : int;
  a_write : bool;
  a_name : string;
}

type input = {
  steps : step array;
  accs : acc array;
  observed : Report.t list;
}

type confidence = Must | May

type witness = { w_tids : int array; w_prefix : int array }

type pair = {
  p_report : Report.t;
  p_var : int;
  p_first : int * int;
  p_second : int * int;
  p_confidence : confidence;
  p_observed : bool;
  p_witnesses : witness list;
}

type t = {
  pairs : pair list;
  n_must : int;
  n_may : int;
  n_observed : int;
  n_vars : int;
  n_lock_excluded : int;
}

(* ---- prefixes ------------------------------------------------------ *)

let normalize_prefix p =
  let n = ref (Array.length p) in
  while !n > 0 && p.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length p then p else Array.sub p 0 !n

let index_in (a : int array) x =
  let n = Array.length a in
  let rec go i = if i >= n then 0 else if a.(i) = x then i else go (i + 1) in
  go 0

let recorded_prefix inp =
  normalize_prefix
    (Array.map (fun s -> index_in s.s_enabled s.s_tid) inp.steps)

(* ---- analysis ------------------------------------------------------ *)

let analyze (inp : input) : t =
  let nsteps = Array.length inp.steps in
  let nthreads =
    let m = ref 0 in
    Array.iter
      (fun s ->
        if s.s_tid > !m then m := s.s_tid;
        Array.iter (fun t -> if t > !m then m := t) s.s_enabled;
        match s.s_foot with
        | P_spawn c | P_join c -> if c > !m then m := c
        | _ -> ())
      inp.steps;
    Array.iter (fun a -> if a.a_tid > !m then m := a.a_tid) inp.accs;
    !m + 1
  in
  (* Per-thread event index: evs.(t).(k-1) = step index of t's k-th
     visible op. *)
  let ev_rev = Array.make nthreads [] in
  Array.iteri (fun i s -> ev_rev.(s.s_tid) <- i :: ev_rev.(s.s_tid)) inp.steps;
  let evs = Array.map (fun l -> Array.of_list (List.rev l)) ev_rev in
  let n_events t = Array.length evs.(t) in
  (* An id is a lock id iff it ever participates in a lock transition;
     other sync ids (condvars) carry real ordering and stay chained. *)
  let lock_ids = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      match s.s_lock with
      | L_none -> ()
      | L_acquire id | L_release id | L_blocked id ->
          Hashtbl.replace lock_ids id ())
    inp.steps;
  let is_lock_id id = Hashtbl.mem lock_ids id in

  (* -- clock pass: hard.(i) / rel.(i) = the two pasts of event i -- *)
  let zeros () = Array.make nthreads 0 in
  let join dst src =
    Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src
  in
  let jopt dst = function Some src -> join dst src | None -> () in
  let hard = Array.make nsteps [||] and rel = Array.make nsteps [||] in
  let start_h = Array.init nthreads (fun _ -> zeros ()) in
  let start_r = Array.init nthreads (fun _ -> zeros ()) in
  let cur_h = Array.init nthreads (fun _ -> zeros ()) in
  let cur_r = Array.init nthreads (fun _ -> zeros ()) in
  let kdone = Array.make nthreads 0 in
  (* spawn points are chained: tids are assigned in spawn order, so no
     reordering may swap two spawns — a hard edge. *)
  let spawn_h = ref None and spawn_r = ref None in
  let fence_r = ref None and world_r = ref None in
  let chain_r : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let last_w : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to nsteps - 1 do
    let s = inp.steps.(i) in
    let t = s.s_tid in
    let k = kdone.(t) + 1 in
    let h = Array.copy cur_h.(t) and r = Array.copy cur_r.(t) in
    (match s.s_foot with
    | P_spawn _ ->
        jopt h !spawn_h;
        jopt r !spawn_r
    | P_join tgt ->
        join h cur_h.(tgt);
        join r cur_r.(tgt);
        (* the join also covers the target's trailing accesses *)
        let full = n_events tgt + 1 in
        if h.(tgt) < full then h.(tgt) <- full;
        if r.(tgt) < full then r.(tgt) <- full
    | P_fence -> jopt r !fence_r
    | P_syscall _ | P_global ->
        (* world-coupled ops share the world PRNG stream: reordering
           them would change every later result, so witness schedules
           keep their order. *)
        jopt r !world_r
    | P_sync (id1, id2) ->
        List.iter
          (fun id ->
            if id >= 0 && not (is_lock_id id) then
              jopt r (Hashtbl.find_opt chain_r id))
          [ id1; id2 ]
    | P_atomic (loc, ak) ->
        (* A load whose bounded store window offered >= 2 admissible
           stores (s_rand) could have read something else: that
           reads-from edge is scheduler-induced and is dropped. A
           forced load, and every write/update (modification order),
           keeps its edge to the previous write. *)
        let forced =
          match ak with A_read -> not s.s_rand | A_write | A_update -> true
        in
        if forced then jopt r (Hashtbl.find_opt last_w loc)
    | P_local -> ());
    h.(t) <- k;
    r.(t) <- k;
    hard.(i) <- h;
    rel.(i) <- r;
    cur_h.(t) <- h;
    cur_r.(t) <- r;
    kdone.(t) <- k;
    (match s.s_foot with
    | P_spawn c ->
        start_h.(c) <- h;
        start_r.(c) <- r;
        cur_h.(c) <- h;
        cur_r.(c) <- r;
        spawn_h := Some h;
        spawn_r := Some r
    | P_atomic (loc, (A_write | A_update)) -> Hashtbl.replace last_w loc r
    | P_fence -> fence_r := Some r
    | P_syscall _ | P_global -> world_r := Some r
    | P_sync (id1, id2) ->
        List.iter
          (fun id ->
            if id >= 0 && not (is_lock_id id) then Hashtbl.replace chain_r id r)
          [ id1; id2 ]
    | P_local | P_atomic (_, A_read) | P_join _ -> ())
  done;

  (* -- lockset pass: locks held during the accesses at (t, k) -- *)
  let ls_after = Array.init nthreads (fun t -> Array.make (n_events t + 1) []) in
  let held = Array.make nthreads [] in
  let kdone2 = Array.make nthreads 0 in
  for i = 0 to nsteps - 1 do
    let s = inp.steps.(i) in
    let t = s.s_tid in
    let k = kdone2.(t) + 1 in
    (match s.s_lock with
    | L_acquire id -> held.(t) <- id :: held.(t)
    | L_release id ->
        let rec drop = function
          | [] -> []
          | x :: tl -> if x = id then tl else x :: drop tl
        in
        held.(t) <- drop held.(t)
    | L_none | L_blocked _ -> ());
    ls_after.(t).(k) <- List.sort compare held.(t);
    kdone2.(t) <- k
  done;
  let lockset a = ls_after.(a.a_tid).(min a.a_pos (n_events a.a_tid)) in
  let rec inter_nonempty l1 l2 =
    (* both sorted ascending *)
    match (l1, l2) with
    | [], _ | _, [] -> false
    | x :: t1, y :: t2 ->
        if x = y then true
        else if x < y then inter_nonempty t1 l2
        else inter_nonempty l1 t2
  in

  (* -- access grouping: dedup (tid, pos, var, write), group by var -- *)
  let seen = Hashtbl.create 64 in
  let vars_order = ref [] in
  let var_accs : (int, acc list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      let key = (a.a_tid, a.a_pos, a.a_var, a.a_write) in
      if not (Hashtbl.mem seen key) then (
        Hashtbl.add seen key ();
        match Hashtbl.find_opt var_accs a.a_var with
        | Some l -> l := a :: !l
        | None ->
            vars_order := a.a_var :: !vars_order;
            Hashtbl.add var_accs a.a_var (ref [ a ])))
    inp.accs;
  let vars_order = List.rev !vars_order in
  let n_vars = List.length vars_order in

  let past clocks start a =
    let ne = n_events a.a_tid in
    if a.a_pos = 0 || ne = 0 then start.(a.a_tid)
    else clocks.(evs.(a.a_tid).(min a.a_pos ne - 1))
  in
  let covers c a = c.(a.a_tid) >= a.a_pos + 1 in

  (* -- witnesses -- *)
  let preserve_w =
    lazy
      {
        w_tids = Array.map (fun s -> s.s_tid) inp.steps;
        w_prefix = recorded_prefix inp;
      }
  in
  let spawn_tick_of =
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun i s ->
        match s.s_foot with
        | P_spawn c -> if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c i
        | _ -> ())
      inp.steps;
    fun tid -> Hashtbl.find_opt tbl tid
  in
  (* Best-effort index prefix realizing a tid plan: rank each planned
     tid among the threads spawned-and-unfinished at that point.
     Blocking is not modeled — the guided verifier repairs mismatches
     against the enabled sets it observes. *)
  let prefix_for_plan plan =
    let spawned = Array.make nthreads false in
    spawned.(0) <- true;
    let ndone = Array.make nthreads 0 in
    let idxs =
      List.map
        (fun e ->
          let t = inp.steps.(e).s_tid in
          let rank = ref 0 and found = ref false in
          for u = 0 to nthreads - 1 do
            if spawned.(u) && ndone.(u) < n_events u then
              if u < t then incr rank else if u = t then found := true
          done;
          ndone.(t) <- ndone.(t) + 1;
          (match inp.steps.(e).s_foot with
          | P_spawn c -> spawned.(c) <- true
          | _ -> ());
          if !found then !rank else 0)
        plan
    in
    normalize_prefix (Array.of_list idxs)
  in
  (* Reverse witness for (a before b in the recording): run everything
     outside a's forward relaxed cone first, up to and including b's
     anchor, then release the cone — so b's access executes before a's.
     Kept edges are respected by construction: the cone is exactly the
     set of events whose relaxed past contains a's anchor event. *)
  let reverse_witness a b =
    if a.a_pos = 0 then None (* fires at spawn; cannot be delayed *)
    else
      let t1 = a.a_tid and p1 = a.a_pos in
      let e1 = evs.(t1).(p1 - 1) in
      let anchor2 =
        if b.a_pos > 0 then Some evs.(b.a_tid).(b.a_pos - 1)
        else spawn_tick_of b.a_tid
      in
      match anchor2 with
      | None -> None
      | Some e2 ->
          let in_cone e = rel.(e).(t1) >= p1 in
          if e2 <= e1 || in_cone e2 then None
          else begin
            let kept = ref [] and delayed = ref [] in
            for e = e2 downto 0 do
              if in_cone e then begin
                (* a failed acquire need not recur once reordered *)
                match inp.steps.(e).s_lock with
                | L_blocked _ -> ()
                | _ -> delayed := e :: !delayed
              end
              else kept := e :: !kept
            done;
            let plan = !kept @ !delayed in
            Some
              {
                w_tids =
                  Array.of_list (List.map (fun e -> inp.steps.(e).s_tid) plan);
                w_prefix = prefix_for_plan plan;
              }
          end
  in

  (* -- pair classification -- *)
  let observed_norm = List.map Report.norm inp.observed in
  let pairs = ref [] in
  let n_lock_excluded = ref 0 in
  List.iter
    (fun v ->
      let arr = Array.of_list (List.rev !(Hashtbl.find var_accs v)) in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if a.a_tid <> b.a_tid && (a.a_write || b.a_write) then
            if inter_nonempty (lockset a) (lockset b) then
              incr n_lock_excluded
            else
              let pa_h = past hard start_h a and pb_h = past hard start_h b in
              if not (covers pb_h a || covers pa_h b) then begin
                let pa_r = past rel start_r a and pb_r = past rel start_r b in
                let rel_ordered = covers pb_r a || covers pa_r b in
                let kind =
                  if a.a_write && b.a_write then Report.Write_write
                  else if a.a_write then Report.Write_read
                  else Report.Read_write
                in
                let rep =
                  Report.norm
                    {
                      Report.var = a.a_name;
                      kind;
                      first_tid = a.a_tid;
                      second_tid = b.a_tid;
                    }
                in
                let obs = List.exists (Report.equal rep) observed_norm in
                (* an observed pair is Must even if our conservative
                   chains order it: the recording itself is the witness *)
                let conf =
                  if obs then Must else if rel_ordered then May else Must
                in
                let wits =
                  match conf with
                  | May -> []
                  | Must ->
                      let p = Lazy.force preserve_w in
                      let rev =
                        if obs then []
                        else
                          match reverse_witness a b with
                          | Some w -> [ w ]
                          | None -> []
                      in
                      (* The serialization witness: an empty guided
                         prefix runs the lowest enabled tid to
                         completion, so each thread executes against
                         the full store history of its predecessors —
                         including conditional branches the recording
                         never took, which no static event plan can
                         anticipate. The empty plan also disables
                         adaptive repair: it is swept as-is per seed. *)
                      (p :: rev) @ [ { w_tids = [||]; w_prefix = [||] } ]
                in
                pairs :=
                  {
                    p_report = rep;
                    p_var = v;
                    p_first = (a.a_tid, a.a_pos);
                    p_second = (b.a_tid, b.a_pos);
                    p_confidence = conf;
                    p_observed = obs;
                    p_witnesses = wits;
                  }
                  :: !pairs
              end
        done
      done)
    vars_order;
  let pairs =
    List.sort
      (fun p q ->
        let c = Report.compare p.p_report q.p_report in
        if c <> 0 then c
        else
          compare
            (p.p_first, p.p_second, p.p_var)
            (q.p_first, q.p_second, q.p_var))
      !pairs
  in
  let count f = List.fold_left (fun n p -> if f p then n + 1 else n) 0 pairs in
  {
    pairs;
    n_must = count (fun p -> p.p_confidence = Must);
    n_may = count (fun p -> p.p_confidence = May);
    n_observed = count (fun p -> p.p_observed);
    n_vars;
    n_lock_excluded = !n_lock_excluded;
  }

(* ---- digest / printing --------------------------------------------- *)

let digest (t : t) =
  Digest.to_hex (Digest.string (Marshal.to_string t [ Marshal.No_sharing ]))

let pp fmt (t : t) =
  Format.fprintf fmt
    "@[<v>%d predicted pair%s (%d must, %d may, %d observed) over %d location%s; %d lock-excluded"
    (List.length t.pairs)
    (if List.length t.pairs = 1 then "" else "s")
    t.n_must t.n_may t.n_observed t.n_vars
    (if t.n_vars = 1 then "" else "s")
    t.n_lock_excluded;
  List.iter
    (fun p ->
      Format.fprintf fmt "@,  %-4s %s T%d@%d vs T%d@%d — %a%s"
        (match p.p_confidence with Must -> "MUST" | May -> "MAY")
        (if p.p_observed then "[observed]" else
           Printf.sprintf "[%d witness%s]" (List.length p.p_witnesses)
             (if List.length p.p_witnesses = 1 then "" else "es"))
        (fst p.p_first) (snd p.p_first) (fst p.p_second) (snd p.p_second)
        Report.pp p.p_report
        "")
    t.pairs;
  Format.fprintf fmt "@]"

(* ---- serialization ------------------------------------------------- *)

(* One line per step ("S"), access ("A") and observed race ("R").
   Location names may contain spaces, so they come last and span the
   rest of their line. *)

let enc_foot = function
  | P_local -> "L"
  | P_atomic (id, A_read) -> Printf.sprintf "A%d.r" id
  | P_atomic (id, A_write) -> Printf.sprintf "A%d.w" id
  | P_atomic (id, A_update) -> Printf.sprintf "A%d.u" id
  | P_fence -> "F"
  | P_sync (a, b) -> Printf.sprintf "Y%d.%d" a b
  | P_spawn c -> Printf.sprintf "P%d" c
  | P_join c -> Printf.sprintf "J%d" c
  | P_syscall id -> Printf.sprintf "W%d" id
  | P_global -> "G"

let enc_lock = function
  | L_none -> "-"
  | L_acquire id -> Printf.sprintf "a%d" id
  | L_release id -> Printf.sprintf "r%d" id
  | L_blocked id -> Printf.sprintf "b%d" id

let enc_kind = function
  | Report.Write_write -> "ww"
  | Report.Write_read -> "wr"
  | Report.Read_write -> "rw"

let encode_input inp =
  let b = Buffer.create 256 in
  let lines = ref [] in
  Array.iter
    (fun s ->
      Buffer.clear b;
      Buffer.add_string b
        (Printf.sprintf "S %d %d %s %s E" s.s_tid
           (if s.s_rand then 1 else 0)
           (enc_foot s.s_foot) (enc_lock s.s_lock));
      Array.iteri
        (fun i t ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int t))
        s.s_enabled;
      Buffer.add_string b " C";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int v))
        (Vclock.to_list s.s_clock);
      lines := Buffer.contents b :: !lines)
    inp.steps;
  Array.iter
    (fun a ->
      lines :=
        Printf.sprintf "A %d %d %d %d %d %s" a.a_tick a.a_tid a.a_pos a.a_var
          (if a.a_write then 1 else 0)
          a.a_name
        :: !lines)
    inp.accs;
  List.iter
    (fun (r : Report.t) ->
      lines :=
        Printf.sprintf "R %s %d %d %s" (enc_kind r.Report.kind)
          r.Report.first_tid r.Report.second_tid r.Report.var
        :: !lines)
    inp.observed;
  List.rev !lines

exception Bad

let dec_int s = match int_of_string_opt s with Some v -> v | None -> raise Bad

let dec_foot s =
  if s = "" then raise Bad
  else
    let num from upto = dec_int (String.sub s from (upto - from)) in
    let rest () = num 1 (String.length s) in
    match s.[0] with
    | 'L' -> P_local
    | 'F' -> P_fence
    | 'G' -> P_global
    | 'A' -> (
        match String.index_opt s '.' with
        | Some d when d + 1 < String.length s ->
            let id = num 1 d in
            let k =
              match s.[d + 1] with
              | 'r' -> A_read
              | 'w' -> A_write
              | 'u' -> A_update
              | _ -> raise Bad
            in
            P_atomic (id, k)
        | _ -> raise Bad)
    | 'Y' -> (
        match String.index_opt s '.' with
        | Some d -> P_sync (num 1 d, num (d + 1) (String.length s))
        | None -> raise Bad)
    | 'P' -> P_spawn (rest ())
    | 'J' -> P_join (rest ())
    | 'W' -> P_syscall (rest ())
    | _ -> raise Bad

let dec_lock s =
  if s = "-" then L_none
  else if s = "" then raise Bad
  else
    let id = dec_int (String.sub s 1 (String.length s - 1)) in
    match s.[0] with
    | 'a' -> L_acquire id
    | 'r' -> L_release id
    | 'b' -> L_blocked id
    | _ -> raise Bad

let dec_kind = function
  | "ww" -> Report.Write_write
  | "wr" -> Report.Write_read
  | "rw" -> Report.Read_write
  | _ -> raise Bad

let dec_csv conv s =
  if s = "" then []
  else List.map conv (String.split_on_char ',' s)

(* split [s] into [n] space-separated fields; the last field is the
   raw remainder of the line (it may itself contain spaces). *)
let split_fields s n =
  let len = String.length s in
  let rec go start left acc =
    if left = 1 then List.rev (String.sub s start (len - start) :: acc)
    else
      match String.index_from_opt s start ' ' with
      | None -> raise Bad
      | Some sp ->
          go (sp + 1) (left - 1) (String.sub s start (sp - start) :: acc)
  in
  if n <= 0 || len = 0 then raise Bad else go 0 n []

let decode_input lines =
  let steps = ref [] and accs = ref [] and obs = ref [] in
  try
    List.iter
      (fun line ->
        if line = "" then ()
        else
          match line.[0] with
          | 'S' -> (
              match split_fields line 7 with
              | [ "S"; tid; rand; foot; lock; en; clk ] ->
                  if String.length en < 1 || en.[0] <> 'E' then raise Bad;
                  if String.length clk < 1 || clk.[0] <> 'C' then raise Bad;
                  let chop x = String.sub x 1 (String.length x - 1) in
                  let enabled =
                    Array.of_list (dec_csv dec_int (chop en))
                  in
                  let clock = Vclock.of_list (dec_csv dec_int (chop clk)) in
                  steps :=
                    {
                      s_tid = dec_int tid;
                      s_enabled = enabled;
                      s_foot = dec_foot foot;
                      s_rand = dec_int rand <> 0;
                      s_clock = clock;
                      s_lock = dec_lock lock;
                    }
                    :: !steps
              | _ -> raise Bad)
          | 'A' -> (
              match split_fields line 7 with
              | [ "A"; tick; tid; pos; var; w; name ] ->
                  accs :=
                    {
                      a_tick = dec_int tick;
                      a_tid = dec_int tid;
                      a_pos = dec_int pos;
                      a_var = dec_int var;
                      a_write = dec_int w <> 0;
                      a_name = name;
                    }
                    :: !accs
              | _ -> raise Bad)
          | 'R' -> (
              match split_fields line 5 with
              | [ "R"; kind; t1; t2; var ] ->
                  obs :=
                    {
                      Report.var;
                      kind = dec_kind kind;
                      first_tid = dec_int t1;
                      second_tid = dec_int t2;
                    }
                    :: !obs
              | _ -> raise Bad)
          | _ -> raise Bad)
      lines;
    Some
      {
        steps = Array.of_list (List.rev !steps);
        accs = Array.of_list (List.rev !accs);
        observed = List.rev !obs;
      }
  with Bad -> None
