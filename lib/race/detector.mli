(** Happens-before race detection for non-atomic accesses.

    The tsan11 substrate: every instrumented non-atomic location carries
    shadow state — the last write (as a FastTrack epoch) and the clock
    of reads since that write. An access races with a shadow entry that
    is not ordered before the accessing thread's current vector clock.

    Non-atomic accesses are *invisible* operations for the scheduler
    (§2: they are not scheduling points) but they are still checked
    here, exactly as tsan's instrumentation checks them without
    affecting scheduling. *)

type t

type var
(** A shadowed non-atomic location. *)

val create : unit -> t

val reset : t -> unit
(** In-place reset to the post-[create] state (reports, dedup table,
    callbacks, suppressions, counters all cleared), recycling shadow
    vars: after [reset], [fresh_var] re-initialises previously created
    var records in place (ids restart at 0) instead of allocating. *)

val fresh_var : t -> name:string -> var
val var_name : var -> string

val var_id : var -> int
(** Dense id, assigned in creation order (restarting at 0 after
    {!reset}) — the stable per-run key the predictive analysis uses to
    pair accesses across threads. *)

val read : t -> var -> st:T11r_mem.Tstate.t -> unit
(** Check-and-update for a non-atomic read.

    @raise Failure if the accessing thread's id or epoch exceeds what
    the packed shadow representation can hold (2^20 threads,
    [max_int asr 20] epochs) — out-of-range values would silently
    corrupt shadow state for every later access. *)

val write : t -> var -> st:T11r_mem.Tstate.t -> unit
(** Check-and-update for a non-atomic write. Same bounds as {!read}. *)

val checks : t -> int
(** Shadow-state checks performed (one per {!read} or {!write}) — the
    detector-load counter of the run metrics. *)

val reports : t -> Report.t list
(** All distinct races found, in detection order. A given
    (location, kind, thread-pair) is reported once, matching tsan's
    report deduplication. *)

val report_count : t -> int
(** Number of distinct reports (the paper's per-run race count). *)

val racy : t -> bool
(** Whether at least one race was detected (Table 1's race "Rate" is
    the fraction of runs for which this is true). *)

val on_report : t -> (Report.t -> unit) -> unit
(** Register a callback invoked on each fresh report; the harness uses
    it to model the cost of emitting race reports (§5.2 "Race reports"
    vs "No reports" columns). *)

val set_access_hook : t -> (var -> tid:int -> write:bool -> unit) option -> unit
(** Stream every shadow-checked access (before the check) to the
    offline predictive analysis. [None] — the default, restored by
    {!reset} — costs one branch per check and allocates nothing, so
    configurations that do not capture decisions stay on the
    zero-allocation path ([bench ops] budgets are unchanged). *)

val set_suppressions : t -> string list -> unit
(** tsan-style suppression patterns: an exact location name, or a
    ['*']-terminated prefix ("scoreboard*"). Matching races are
    counted but not reported — how a team mutes known-benign races
    while hunting new ones (the paper's Table 2 discusses httpd
    results "in which many races are fixed"). *)

val suppressed_count : t -> int
(** How many race detections the suppression list swallowed. *)
