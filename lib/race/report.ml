type kind = Write_write | Write_read | Read_write

type t = {
  var : string;
  kind : kind;
  first_tid : int;
  second_tid : int;
}

let kind_to_string = function
  | Write_write -> "write-write"
  | Write_read -> "write-read"
  | Read_write -> "read-write"

let pp fmt r =
  Format.fprintf fmt "data race (%s) on %s: T%d vs T%d"
    (kind_to_string r.kind) r.var r.first_tid r.second_tid

let equal (a : t) b = a = b
let compare (a : t) b = compare a b
