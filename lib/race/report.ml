type kind = Write_write | Write_read | Read_write

type t = {
  var : string;
  kind : kind;
  first_tid : int;
  second_tid : int;
}

let kind_to_string = function
  | Write_write -> "write-write"
  | Write_read -> "write-read"
  | Read_write -> "read-write"

let pp fmt r =
  Format.fprintf fmt "data race (%s) on %s: T%d vs T%d"
    (kind_to_string r.kind) r.var r.first_tid r.second_tid

let equal (a : t) b = a = b
let compare (a : t) b = compare a b

(* Canonical form of the symmetric pair: the same race observed in the
   opposite order (write seen first vs. read seen first) must key
   identically in histograms. Write-before-read is the canonical
   orientation; write-write pairs order by tid. *)
let norm (r : t) =
  match r.kind with
  | Write_read -> r
  | Read_write ->
      {
        r with
        kind = Write_read;
        first_tid = r.second_tid;
        second_tid = r.first_tid;
      }
  | Write_write ->
      if r.first_tid <= r.second_tid then r
      else { r with first_tid = r.second_tid; second_tid = r.first_tid }
