let border = String.make 18 '='

let name_of thread_names tid =
  match List.assoc_opt tid thread_names with
  | Some n -> Printf.sprintf "T%d (%s)" tid n
  | None -> Printf.sprintf "T%d" tid

let race ?(thread_names = []) ?tick (r : Report.t) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" border;
  line "WARNING: data race (%s)" (Report.kind_to_string r.kind);
  (match tick with
  | Some t -> line "  detected at critical section #%d" t
  | None -> ());
  let first_access, second_access =
    match r.kind with
    | Report.Write_write -> ("previous write", "write")
    | Report.Write_read -> ("previous write", "read")
    | Report.Read_write -> ("previous read", "write")
  in
  line "  %s of '%s' by thread %s" second_access r.var
    (name_of thread_names r.second_tid);
  line "  %s of '%s' by thread %s" first_access r.var
    (name_of thread_names r.first_tid);
  line "  location: %s" r.var;
  line "%s" border;
  Buffer.contents buf

let lock_cycle ?(thread_names = []) (c : Lockorder.cycle) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" border;
  line "WARNING: lock-order inversion (potential deadlock)";
  List.iter
    (fun (e : Lockorder.edge) ->
      line "  thread %s acquires '%s' while holding '%s'"
        (name_of thread_names e.witness_tid)
        e.to_lock e.from_lock)
    c;
  line "%s" border;
  Buffer.contents buf

let summary ~races ~cycles =
  let n = List.length races + List.length cycles in
  if n = 0 then ""
  else
    Printf.sprintf "SUMMARY: %d warning%s (%d data race%s, %d lock inversion%s)"
      n
      (if n = 1 then "" else "s")
      (List.length races)
      (if List.length races = 1 then "" else "s")
      (List.length cycles)
      (if List.length cycles = 1 then "" else "s")
