(** Offline predictive race analysis over one recorded execution.

    The paper's toolchain finds weak-memory races by {e running} many
    controlled schedules; this module is the classic complement
    (Ronsse & De Bosschere's replay-based detection, RVPredict-style
    HB relaxation): take the per-decision metadata of a single
    recorded run — chosen thread, enabled set, dependency footprint,
    lock events, FastTrack clock snapshots — plus the stream of
    shadow-checked non-atomic accesses, and {e without executing
    anything} predict which access pairs can race in some feasible
    reordering of that run.

    Three orders are computed over the recorded events:

    - the {b hard} order: program order, spawn (a child starts after
      its spawn point; spawn points are chained, because thread ids
      are assigned in spawn order) and join edges. No reordering can
      break these, so pairs ordered here are structurally impossible
      and are not reported at all.
    - the {b relaxed} order: the hard order plus every edge a
      reordering must still respect — fence chains, world-coupled
      operation chains (syscalls share the world PRNG), condvar
      signal/wait chains, and atomic reads-from edges that were
      {e forced} (the store window offered exactly one admissible
      store, so the load could not have seen anything else).
      Scheduler-induced edges are dropped: mutex/rwlock
      release-to-acquire ordering (mutual exclusion is enforced by
      the lockset pass and by witness scheduling instead) and atomic
      reads-from edges where the bounded store window offered two or
      more admissible stores ([s_rand]) — the window is exactly what
      licenses the relaxation, and also what bounds it.
    - the {b lockset} view: accesses whose held-lock sets intersect
      can never race, whatever the order.

    Conflicting pairs with disjoint locksets are then tagged [Must]
    (unordered in the relaxed order — a concrete witness schedule is
    constructed) or [May] (ordered in the relaxed order but not in the
    hard one — lockset-only evidence, no feasible reordering
    constructed). Only [Must] pairs whose witness is {e confirmed} by
    a guided replay may ever be reported as races; [May] and refuted
    pairs never are. *)

module Vclock = T11r_util.Vclock

type access_kind = A_read | A_write | A_update

(** Mirror of the interpreter's per-decision dependency footprint,
    self-contained so the analysis stays below the interpreter in the
    library stack. *)
type foot =
  | P_local
  | P_atomic of int * access_kind  (** atomic location id *)
  | P_fence
  | P_sync of int * int  (** sync object id(s); second is -1 if unused *)
  | P_spawn of int  (** created tid *)
  | P_join of int
  | P_syscall of int
  | P_global

(** Lock transition performed by the decision's visible op, if any —
    disambiguates the [P_sync] footprint (lock, unlock and failed
    acquire all share one footprint shape). *)
type lockev =
  | L_none
  | L_acquire of int
  | L_release of int
  | L_blocked of int  (** failed acquire: the thread parked on the id *)

type step = {
  s_tid : int;
  s_enabled : int array;  (** runnable tids, ascending *)
  s_foot : foot;
  s_rand : bool;
      (** the op drew among >= 2 behaviour-relevant alternatives *)
  s_clock : Vclock.t;
      (** FastTrack clock of [s_tid] after the op — the runtime
          happens-before ground truth the relaxation starts from *)
  s_lock : lockev;
}

type acc = {
  a_tick : int;  (** decision index the access is attributed to *)
  a_tid : int;
  a_pos : int;
      (** visible ops [a_tid] had executed when the access ran — the
          access's program-order position between events [a_pos] and
          [a_pos + 1] of its thread *)
  a_var : int;  (** shadow-variable id *)
  a_write : bool;
  a_name : string;
}

type input = {
  steps : step array;  (** one per executed decision, in order *)
  accs : acc array;  (** shadow-checked non-atomic accesses, in order *)
  observed : Report.t list;  (** races the recording itself reported *)
}

type confidence = Must | May

type witness = {
  w_tids : int array;
      (** planned thread per decision — the schedule to realize *)
  w_prefix : int array;
      (** the plan as a normalized guided-strategy index prefix (the
          same format [Systematic] and [Corpus] use); a best-effort
          starting point that guided replay repairs adaptively *)
}

type pair = {
  p_report : Report.t;  (** normalized (canonical orientation) *)
  p_var : int;
  p_first : int * int;  (** (tid, position) of the earlier access *)
  p_second : int * int;
  p_confidence : confidence;
  p_observed : bool;  (** the recording already reported this race *)
  p_witnesses : witness list;
      (** non-empty iff [Must]: candidate schedules, most faithful to
          the recording first *)
}

type t = {
  pairs : pair list;  (** deterministic order (report, then positions) *)
  n_must : int;
  n_may : int;
  n_observed : int;
  n_vars : int;  (** distinct shared locations in the access stream *)
  n_lock_excluded : int;
      (** conflicting pairs excluded by a common lock *)
}

val analyze : input -> t
(** Pure function of the input — identical output whatever domain or
    worker count computed it. *)

val digest : t -> string
(** Hex digest of the full analysis (Marshal [No_sharing], like the
    campaign digest discipline). *)

val pp : Format.formatter -> t -> unit

val normalize_prefix : int array -> int array
(** Strip trailing zeros — beyond its prefix the guided strategy picks
    index 0, so [p ++ [0]] realizes the same schedule as [p]. *)

val recorded_prefix : input -> int array
(** The exact normalized index prefix that realizes the recorded
    schedule (each step's chosen tid located in its enabled set). *)

val encode_input : input -> string list
(** Line encoding for demo aux files (one "S"/"A"/"R" line per step,
    access and observed race). *)

val decode_input : string list -> input option
(** Inverse of {!encode_input}; [None] on any malformed line. *)
