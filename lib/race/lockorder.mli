(** Lock-order inversion detection (potential deadlocks).

    ThreadSanitizer reports more than data races: acquiring locks in
    inconsistent orders is flagged as a potential deadlock even on runs
    where the deadlock does not manifest — exactly the kind of bug
    controlled scheduling wants to surface on every run rather than
    once in a thousand.

    The detector maintains the classic lock-order graph: an edge
    [A -> B] means some thread acquired [B] while holding [A]. A cycle
    in the graph is a potential deadlock; each cycle is reported once,
    with the locks involved and witness threads for each edge. *)

type t

type edge = {
  from_lock : string;
  to_lock : string;
  witness_tid : int;  (** a thread that acquired [to_lock] under [from_lock] *)
}

type cycle = edge list
(** The edges of one inconsistent-order cycle, e.g.
    [\[A->B (T1); B->A (T2)\]]. *)

val create : unit -> t

val disabled : t
(** Shared no-op instance: [acquired]/[released] on it do nothing. The
    interpreter installs it while fast-forwarding a snapshot resume,
    where the graph state comes from the snapshot instead. *)

val reset : t -> unit
(** In-place reset to the post-[create] state (graph, held sets and
    reported cycles cleared; table capacity retained). *)

val copy : t -> t
(** Independent deep copy — mutating the copy never affects the
    original. Used to capture lock-graph state into a snapshot. *)

val acquired : t -> tid:int -> lock:int -> name:string -> unit
(** Thread [tid] acquired [lock]; edges are added from every lock it
    currently holds. *)

val released : t -> tid:int -> lock:int -> unit

val cycles : t -> cycle list
(** All distinct cycles found so far, in detection order. Each set of
    locks is reported once, mirroring tsan's report deduplication. *)

val cycle_count : t -> int
val pp_cycle : Format.formatter -> cycle -> unit
