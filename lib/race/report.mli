(** Data-race reports. *)

type kind = Write_write | Write_read | Read_write

type t = {
  var : string;  (** name of the racing location *)
  kind : kind;
  first_tid : int;  (** thread of the earlier (shadow) access *)
  second_tid : int;  (** thread whose access detected the race *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
