(** Data-race reports. *)

type kind = Write_write | Write_read | Read_write

type t = {
  var : string;  (** name of the racing location *)
  kind : kind;
  first_tid : int;  (** thread of the earlier (shadow) access *)
  second_tid : int;  (** thread whose access detected the race *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val norm : t -> t
(** Canonical key for the symmetric pair: a [Read_write] is rewritten
    to the equivalent [Write_read] with the tids swapped, and a
    [Write_write] orders its tids ascending — so the same race sighted
    in opposite observation orders across runs keys identically in
    histograms. Idempotent; [norm a = norm b] iff [a] and [b] name the
    same unordered racing pair. *)
