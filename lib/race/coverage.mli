(** Per-run schedule-coverage fingerprints.

    A fingerprint is a fixed 4096-bit hash set over the events that
    distinguish one schedule from another: racing-pair sites,
    happens-before edges between distinct (tid, object) pairs,
    stale-read sites, and preemption points. The interpreter marks
    bits during the run; harness code works with the immutable
    {!summary} extracted at the end.

    The mutable collector follows [T11r_obs.Trace]'s discipline: the
    interpreter threads a handle through every run, and when coverage
    is off ({!disabled}) each {!mark} is a single branch with zero
    allocation — enforced by the [bench ops] budgets. *)

type t
(** A mutable per-run bit collector. *)

val disabled : t
(** The shared no-op collector: {!mark} returns immediately. *)

val create : unit -> t
(** A fresh all-zero collector. *)

val enabled : t -> bool

val marks : t -> int
(** Marks issued so far, counting duplicates. *)

val reset : t -> unit
(** Clear all bits and the mark counter in place (no-op on
    {!disabled}). *)

val copy : t -> t
(** Independent copy; {!disabled} copies to itself. *)

val restore : src:t -> dst:t -> unit
(** Overwrite [dst]'s bits and mark count with [src]'s (no-op when
    [dst] is {!disabled}) — snapshot restore into a recycled
    collector. *)

val mark : t -> int -> unit
(** Set the bit addressed by a site hash (mod the bitmap width). One
    branch and no allocation when the collector is {!disabled}. *)

(** {2 Site hashes}

    Deterministic FNV-1a site addresses, one salt per event family.
    All are allocation-free. *)

val site_race : var:string -> kind:int -> first_tid:int -> second_tid:int -> int
val site_edge : tid:int -> obj:int -> int
val site_stale : tid:int -> var:string -> int
val site_preempt : prev:int -> next:int -> int

(** {2 Summaries} *)

type summary = string
(** An immutable fingerprint: either the empty string (coverage was
    disabled, or nothing merged yet — the {!union} identity) or the
    raw 512-byte bitmap. Plain data: marshal-stable, structurally
    comparable, safe inside campaign journals and digests. *)

val empty : summary

val summarize : t -> summary
(** Snapshot a collector. {!empty} for a {!disabled} collector. *)

val union : summary -> summary -> summary
(** Bitwise or — commutative and associative with identity {!empty},
    so any merge order over the same multiset of summaries produces
    identical bytes.
    @raise Invalid_argument on width mismatch. *)

val new_bits : base:summary -> summary -> int
(** Bits set in the summary but not in [base] — the corpus admission
    test. *)

val popcount : summary -> int
val is_empty : summary -> bool

val equal : summary -> summary -> bool
(** Structural equality ({!empty} equals an explicit all-zero bitmap). *)

val digest : summary -> string
(** Hex MD5 of the bitmap bytes. *)
