(** ThreadSanitizer-style textual reports.

    tsan's value is partly its report format: a bordered WARNING block
    naming the racing location, the two accesses with their threads,
    and the thread roster. This module renders our {!Report.t} and
    {!Lockorder.cycle} values in that house style so the CLI's output
    reads like the tool the paper instruments. *)

val race :
  ?thread_names:(int * string) list ->
  ?tick:int ->
  Report.t ->
  string
(** A multi-line tsan-style data-race warning block. [tick] is the
    critical section at which the race was detected, when known. *)

val lock_cycle : ?thread_names:(int * string) list -> Lockorder.cycle -> string
(** A tsan-style lock-order-inversion warning block. *)

val summary : races:Report.t list -> cycles:Lockorder.cycle list -> string
(** The one-line footer ("N warnings"), empty string when clean. *)
