(* CDSchecker "mcs-lock": the Mellor-Crummey–Scott queue lock.

   Each contender appends itself to a queue of waiting nodes via an
   atomic exchange on the tail, spins on its own node's flag, and on
   unlock passes the lock to its successor. The seeded bug: the unlock
   hand-off store is [Relaxed], so the critical sections of consecutive
   lock holders are not ordered and their accesses to the protected
   data race.

   As with the other conditional benchmarks, the second contender
   enters its critical section only if its bounded spin observes the
   hand-off. The first holder finishes quickly, so under uniform random
   scheduling the hand-off is very likely to be interleaved into the
   spin window (Table 1: 77% for rnd) while arrival-order strategies
   miss it almost always (0.0/0.1%). *)

open T11r_vm

let holder_work_us = 150
let spin_bound = 4

let program () =
  Api.program ~name:"mcs-lock" (fun () ->
      let data = Api.Var.create ~name:"mcsdata" 0 in
      (* tail: 0 = free, tid+1 = owned; node flags: one per contender *)
      let tail = Api.Atomic.create ~name:"tail" 0 in
      let node1_flag = Api.Atomic.create ~name:"node1" 0 in
      let t1 =
        Api.Thread.spawn ~name:"holder" (fun () ->
            Api.work holder_work_us;
            (* Uncontended acquire: exchange tail 0 -> 1. *)
            let prev = Api.Atomic.exchange ~mo:Relaxed tail 1 in
            assert (prev = 0);
            Api.Var.set data 1;
            (* Unlock: pass to successor by raising its node flag. *)
            Api.Atomic.store ~mo:Relaxed node1_flag 1 (* BUG: not Release *);
            Api.Atomic.store ~mo:Relaxed tail 0)
      in
      let t2 =
        Api.Thread.spawn ~name:"waiter" (fun () ->
            (* Spin on our node's flag, bounded. *)
            let got = ref false in
            let i = ref 0 in
            while (not !got) && !i < spin_bound do
              incr i;
              if Api.Atomic.load ~mo:Relaxed node1_flag = 1 (* BUG *) then
                got := true
            done;
            if !got then
              Api.Sys_api.print (Printf.sprintf "cs=%d" (Api.Var.get data))
            else Api.Sys_api.print "starved")
      in
      Api.Thread.join t1;
      Api.Thread.join t2)

(* The repaired hand-off: release store, acquire spin. *)
let fixed_program () =
  Api.program ~name:"mcs-lock-fixed" (fun () ->
      let data = Api.Var.create ~name:"mcsdata" 0 in
      let tail = Api.Atomic.create ~name:"tail" 0 in
      let node1_flag = Api.Atomic.create ~name:"node1" 0 in
      let t1 =
        Api.Thread.spawn ~name:"holder" (fun () ->
            Api.work holder_work_us;
            let prev = Api.Atomic.exchange ~mo:Acq_rel tail 1 in
            assert (prev = 0);
            Api.Var.set data 1;
            Api.Atomic.store ~mo:Release node1_flag 1;
            Api.Atomic.store ~mo:Release tail 0)
      in
      let t2 =
        Api.Thread.spawn ~name:"waiter" (fun () ->
            let got = ref false in
            let i = ref 0 in
            while (not !got) && !i < spin_bound + 30 do
              incr i;
              if Api.Atomic.load ~mo:Acquire node1_flag = 1 then got := true
              else Api.work 30
            done;
            if !got then
              Api.Sys_api.print (Printf.sprintf "cs=%d" (Api.Var.get data))
            else Api.Sys_api.print "starved")
      in
      Api.Thread.join t1;
      Api.Thread.join t2)
