(* Lamport's single-producer/single-consumer ring buffer (extension
   benchmark, not part of the paper's Table 1).

   The producer writes the slot then advances [tail]; the consumer
   compares [head] with [tail], reads the slot, then advances [head].
   Correct C++11 code publishes [tail] with release and reads it with
   acquire. The seeded bug drops both to [Relaxed], so a consumer that
   observes the advanced tail is not synchronised with the slot write.

   The consumer polls a bounded number of times; the race needs it to
   observe the relaxed tail bump, which arrival-order scheduling makes
   rare and random scheduling common. *)

open T11r_vm

let capacity = 4
let items = 3
let producer_work_us = 180
let consumer_polls = 6

let program () =
  Api.program ~name:"spsc-queue" (fun () ->
      let slots =
        Array.init capacity (fun i ->
            Api.Var.create ~name:(Printf.sprintf "spsc_slot%d" i) 0)
      in
      let head = Api.Atomic.create ~name:"spsc_head" 0 in
      let tail = Api.Atomic.create ~name:"spsc_tail" 0 in
      let producer =
        Api.Thread.spawn ~name:"producer" (fun () ->
            for i = 1 to items do
              Api.work producer_work_us;
              let t = Api.Atomic.load ~mo:Relaxed tail in
              Api.Var.set slots.(t mod capacity) (100 + i);
              Api.Atomic.store ~mo:Relaxed tail (t + 1) (* BUG: not Release *)
            done)
      in
      let consumer =
        Api.Thread.spawn ~name:"consumer" (fun () ->
            let consumed = ref 0 in
            let polls = ref 0 in
            while !consumed < items && !polls < consumer_polls do
              incr polls;
              let h = Api.Atomic.load ~mo:Relaxed head in
              let t = Api.Atomic.load ~mo:Relaxed tail (* BUG: not Acquire *) in
              if t > h then begin
                (* racy slot read: nothing orders it after the write *)
                let v = Api.Var.get slots.(h mod capacity) in
                Api.Sys_api.print (Printf.sprintf "%d;" v);
                Api.Atomic.store ~mo:Release head (h + 1);
                incr consumed
              end
            done)
      in
      Api.Thread.join producer;
      Api.Thread.join consumer)

(* The repaired queue: release tail publish, acquire tail read. *)
let fixed_program () =
  Api.program ~name:"spsc-queue-fixed" (fun () ->
      let slots =
        Array.init capacity (fun i ->
            Api.Var.create ~name:(Printf.sprintf "spsc_slot%d" i) 0)
      in
      let head = Api.Atomic.create ~name:"spsc_head" 0 in
      let tail = Api.Atomic.create ~name:"spsc_tail" 0 in
      let producer =
        Api.Thread.spawn ~name:"producer" (fun () ->
            for i = 1 to items do
              Api.work producer_work_us;
              let t = Api.Atomic.load ~mo:Relaxed tail in
              Api.Var.set slots.(t mod capacity) (100 + i);
              Api.Atomic.store ~mo:Release tail (t + 1)
            done)
      in
      let consumer =
        Api.Thread.spawn ~name:"consumer" (fun () ->
            let consumed = ref 0 in
            let polls = ref 0 in
            while !consumed < items && !polls < consumer_polls + 60 do
              incr polls;
              let h = Api.Atomic.load ~mo:Relaxed head in
              let t = Api.Atomic.load ~mo:Acquire tail in
              if t > h then begin
                let v = Api.Var.get slots.(h mod capacity) in
                Api.Sys_api.print (Printf.sprintf "%d;" v);
                Api.Atomic.store ~mo:Release head (h + 1);
                incr consumed
              end
              else Api.work 60
            done)
      in
      Api.Thread.join producer;
      Api.Thread.join consumer)
