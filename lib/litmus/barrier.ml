(* CDSchecker "barrier": a sense-reversing spinning barrier.

   The seeded bug (as in the CDSchecker suite): the spin loop reads the
   barrier's sense flag with [Relaxed] instead of [Acquire], so a thread
   leaving the barrier is not synchronised with the threads that entered
   it — its post-barrier read of the shared payload races with their
   pre-barrier writes.

   The spin is bounded (a real system would fall back to futex): if the
   flipped sense is never observed the thread gives up and skips the
   payload access. That gate is what makes the race schedule-dependent:
   under arrival-order scheduling the waiter's bounded spin completes
   before the releaser's store ever lands, so the race almost never
   manifests (tsan11: 0.0%); uniform random scheduling interleaves the
   store into the spin window and finds it (~37% in Table 1). *)

open T11r_vm

let spin_bound = 1
let releaser_work_us = 300

let program () =
  Api.program ~name:"barrier" (fun () ->
      let payload = Api.Var.create ~name:"payload" 0 in
      let sense = Api.Atomic.create ~name:"sense" 0 in
      let releaser =
        Api.Thread.spawn ~name:"releaser" (fun () ->
            (* Pre-barrier work, then publish and flip the sense. *)
            Api.work releaser_work_us;
            Api.Var.set payload 42;
            Api.Atomic.store ~mo:Relaxed sense 1 (* BUG: should be Release *))
      in
      let waiter =
        Api.Thread.spawn ~name:"waiter" (fun () ->
            let passed = ref false in
            let i = ref 0 in
            while (not !passed) && !i < spin_bound do
              incr i;
              if Api.Atomic.load ~mo:Relaxed sense = 1 (* BUG: not Acquire *)
              then passed := true
            done;
            if !passed then
              (* Post-barrier: racy read of the payload. *)
              Api.Sys_api.print (Printf.sprintf "p=%d" (Api.Var.get payload))
            else Api.Sys_api.print "timeout")
      in
      Api.Thread.join releaser;
      Api.Thread.join waiter)

(* The repaired barrier: release publish, acquire spin. With these
   orders the payload access is ordered after the publication and no
   tool should report a race — the detector's no-false-positive case. *)
let fixed_program () =
  Api.program ~name:"barrier-fixed" (fun () ->
      let payload = Api.Var.create ~name:"payload" 0 in
      let sense = Api.Atomic.create ~name:"sense" 0 in
      let releaser =
        Api.Thread.spawn ~name:"releaser" (fun () ->
            Api.work releaser_work_us;
            Api.Var.set payload 42;
            Api.Atomic.store ~mo:Release sense 1)
      in
      let waiter =
        Api.Thread.spawn ~name:"waiter" (fun () ->
            let passed = ref false in
            let i = ref 0 in
            while (not !passed) && !i < spin_bound + 30 do
              incr i;
              if Api.Atomic.load ~mo:Acquire sense = 1 then passed := true
              else Api.work 50
            done;
            if !passed then
              Api.Sys_api.print (Printf.sprintf "p=%d" (Api.Var.get payload))
            else Api.Sys_api.print "timeout")
      in
      Api.Thread.join releaser;
      Api.Thread.join waiter)
