type entry = {
  name : string;
  build : unit -> T11r_vm.Api.program;
  description : string;
}

let all =
  [
    {
      name = "barrier";
      build = Barrier.program;
      description = "sense-reversing barrier, relaxed spin (racy payload)";
    };
    {
      name = "chase-lev-deque";
      build = Chase_lev_deque.program;
      description = "Chase-Lev work-stealing deque, relaxed bottom publish";
    };
    {
      name = "dekker-fences";
      build = Dekker_fences.program;
      description = "Dekker mutual exclusion, one fence missing";
    };
    {
      name = "linuxrwlocks";
      build = Linuxrwlocks.program;
      description = "Linux-style rw spinlock, relaxed unlock";
    };
    {
      name = "mcs-lock";
      build = Mcs_lock.program;
      description = "MCS queue lock, relaxed hand-off";
    };
    {
      name = "mpmc-queue";
      build = Mpmc_queue.program;
      description = "Vyukov bounded MPMC queue, relaxed publish";
    };
    {
      name = "ms-queue";
      build = Ms_queue.program;
      description = "Michael-Scott queue with racy statistics counter";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let fixed =
  [
    {
      name = "barrier-fixed";
      build = Barrier.fixed_program;
      description = "barrier with release publish / acquire spin";
    };
    {
      name = "dekker-fences-fixed";
      build = Dekker_fences.fixed_program;
      description = "Dekker with both fences present";
    };
    {
      name = "mcs-lock-fixed";
      build = Mcs_lock.fixed_program;
      description = "MCS lock with release/acquire hand-off";
    };
    {
      name = "mpmc-queue-fixed";
      build = Mpmc_queue.fixed_program;
      description = "MPMC queue with release publish";
    };
  ]

let fig1 =
  {
    name = "fig1";
    build = Fig1.program;
    description = "Figure 1: weak-memory race, impossible under SC";
  }

let extended =
  [
    {
      name = "seqlock";
      build = Seqlock.program;
      description = "sequence lock with relaxed validation (torn reads)";
    };
    {
      name = "spsc-queue";
      build = Spsc_queue.program;
      description = "Lamport SPSC ring with relaxed tail publish";
    };
  ]

let extended_fixed =
  [
    {
      name = "seqlock-fixed";
      build = Seqlock.fixed_program;
      description = "sequence lock with acquire validation and retries";
    };
    {
      name = "spsc-queue-fixed";
      build = Spsc_queue.fixed_program;
      description = "Lamport SPSC ring with release/acquire tail";
    };
  ]
