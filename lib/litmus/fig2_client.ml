(* Figure 2 of the paper: the generic client that receives request
   buffers from a server, processes them, and sends them back, with a
   Listener thread, a Responder thread, a mutex-protected queue and a
   signal handler that triggers shutdown.

   This is the paper's running example for what must be recorded (the
   interleaving, poll/recv/send results, the signal arrival) and what
   need not be (memory layout). It doubles as an integration test and
   as the quickstart example's workload. *)

open T11r_vm

type config = {
  requests : int;  (** how many requests the server sends *)
  request_gap_us : int;  (** mean gap between server requests *)
  quit_after_us : int;  (** when SIGTERM arrives (absolute, µs) *)
}

let default_config =
  { requests = 5; request_gap_us = 400; quit_after_us = 20_000 }

(* The remote server: sends [requests] buffers, then goes quiet; echoes
   nothing back on its own. *)
let server_peer cfg =
  {
    T11r_env.World.on_receive = (fun _ _ -> []);
    spontaneous =
      (fun rng i ->
        if i >= cfg.requests then None
        else
          Some
            ( cfg.request_gap_us + T11r_util.Prng.int rng cfg.request_gap_us,
              Bytes.of_string (Printf.sprintf "req-%d" i) ));
  }

(* Prepare the environment: connect to the server and schedule the
   shutdown signal. Returns the connected socket fd. *)
let setup_world cfg world =
  T11r_env.World.schedule_signal world ~at:cfg.quit_after_us ~signo:15;
  T11r_env.World.connect world (server_peer cfg)

let program ?(cfg = default_config) ~server_fd () =
  ignore cfg;
  Api.program ~name:"fig2-client" (fun () ->
      let quit = Api.Atomic.create ~name:"quit" 0 in
      let mtx = Api.Mutex.create ~name:"mtx" () in
      let requests = Queue.create () in
      let pending = Api.Var.create ~name:"pending" 0 in
      Api.set_signal_handler 15 (fun () -> Api.Atomic.store quit 1);
      let listener () =
        while Api.Atomic.load quit = 0 do
          (* Transient poll/recv failures (EINTR from the shutdown
             signal, injected EAGAIN) are retried with backoff; only a
             persistent error is fatal. *)
          let res =
            Api.Sys_api.retry (fun () ->
                Api.Sys_api.poll ~fds:[ server_fd ] ~timeout_ms:1)
          in
          if res.Syscall.ret <> 0 then begin
            if res.Syscall.ret < 0 then failwith "poll error";
            let r =
              Api.Sys_api.retry (fun () ->
                  Api.Sys_api.recv ~fd:server_fd ~len:100)
            in
            if r.Syscall.ret > 0 then begin
              Api.Mutex.lock mtx;
              Queue.push r.Syscall.data requests;
              Api.Var.incr pending;
              Api.Mutex.unlock mtx
            end
          end
        done
      in
      let responder () =
        while Api.Atomic.load quit = 0 do
          Api.Mutex.lock mtx;
          if Api.Var.get pending = 0 then begin
            Api.Mutex.unlock mtx;
            Api.sleep_ms 1
          end
          else begin
            let buf = Queue.pop requests in
            Api.Var.set pending (Api.Var.get pending - 1);
            Api.Mutex.unlock mtx;
            (* Process(buf): uppercase the payload. *)
            Api.work 50;
            let processed = Bytes.map Char.uppercase_ascii buf in
            ignore (Api.Sys_api.send ~fd:server_fd processed);
            Api.Sys_api.print (Bytes.to_string processed ^ ";")
          end
        done
      in
      let l = Api.Thread.spawn ~name:"Listener" listener in
      let r = Api.Thread.spawn ~name:"Responder" responder in
      Api.Thread.join l;
      Api.Thread.join r;
      Api.Sys_api.print "shutdown")
