(* CDSchecker "dekker-fences": Dekker's mutual-exclusion protocol with
   C++11 fences.

   Correct Dekker needs a seq-cst fence between publishing one's intent
   flag and reading the peer's. The seeded bug: thread 2's fence is
   missing, so both threads can read the peer's flag as 0 and enter the
   critical section together, racing on the protected variable. Because
   entry depends on a coin-flip pair of relaxed reads, the race
   manifests on roughly half of the runs under every strategy —
   exactly the Table 1 profile (49.9-52.8%). *)

open T11r_vm

let program () =
  Api.program ~name:"dekker-fences" (fun () ->
      let shared = Api.Var.create ~name:"critical" 0 in
      let flag1 = Api.Atomic.create ~name:"flag1" 0 in
      let flag2 = Api.Atomic.create ~name:"flag2" 0 in
      let t1 =
        Api.Thread.spawn ~name:"T1" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag1 1;
            Api.Atomic.fence Seq_cst;
            if Api.Atomic.load ~mo:Relaxed flag2 = 0 then begin
              (* critical section *)
              Api.Var.incr shared
            end;
            Api.Atomic.store ~mo:Release flag1 0)
      in
      let t2 =
        Api.Thread.spawn ~name:"T2" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag2 1;
            (* BUG: missing seq-cst fence here *)
            if Api.Atomic.load ~mo:Relaxed flag1 = 0 then begin
              Api.Var.incr shared
            end;
            Api.Atomic.store ~mo:Release flag2 0)
      in
      Api.Thread.join t1;
      Api.Thread.join t2;
      Api.Sys_api.print (Printf.sprintf "s=%d" (Api.Var.get shared)))

(* The repaired protocol: both threads fence — and, instructively, the
   exit-protocol flag resets are gone. The first "fix" kept the
   trailing [flag := 0] release stores, and the detector rightly still
   flagged it: a relaxed load of the *reset* re-admits the peer without
   synchronising with the first critical section. For the one-shot
   protocol the resets serve no purpose, so the repaired version drops
   them; mutual exclusion then holds on every schedule and the
   critical-section accesses never race. *)
let fixed_program () =
  Api.program ~name:"dekker-fences-fixed" (fun () ->
      let shared = Api.Var.create ~name:"critical" 0 in
      let flag1 = Api.Atomic.create ~name:"flag1" 0 in
      let flag2 = Api.Atomic.create ~name:"flag2" 0 in
      let t1 =
        Api.Thread.spawn ~name:"T1" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag1 1;
            Api.Atomic.fence Seq_cst;
            if Api.Atomic.load ~mo:Relaxed flag2 = 0 then Api.Var.incr shared)
      in
      let t2 =
        Api.Thread.spawn ~name:"T2" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag2 1;
            Api.Atomic.fence Seq_cst;
            if Api.Atomic.load ~mo:Relaxed flag1 = 0 then Api.Var.incr shared)
      in
      Api.Thread.join t1;
      Api.Thread.join t2;
      Api.Sys_api.print (Printf.sprintf "s=%d" (Api.Var.get shared)))
