(** The CDSchecker benchmark registry (§5.1).

    The seven concurrency litmus programs used to evaluate tsan11rec's
    controlled scheduling, plus the paper's two figure programs. Each
    entry builds a fresh program per run (programs close over fresh
    atomics, so they must not be shared between runs). *)

type entry = {
  name : string;
  build : unit -> T11r_vm.Api.program;
  description : string;
}

val all : entry list
(** The seven Table 1 benchmarks, in the table's order. *)

val find : string -> entry option

val fig1 : entry
(** The weak-memory race of Figure 1 (not part of Table 1). *)

val extended : entry list
(** Extra weak-memory benchmarks beyond the paper's Table 1 (seqlock,
    Lamport's SPSC ring), with the same conditional-manifestation
    structure: random scheduling exposes them, arrival order rarely
    does. *)

val extended_fixed : entry list
(** Repaired versions of {!extended}. *)

val fixed : entry list
(** Repaired versions of the benchmarks whose bug is a wrong memory
    order (barrier, dekker-fences, mcs-lock, mpmc-queue): the
    detector's no-false-positive regression set — no tool should
    report a race on these under any schedule. *)
