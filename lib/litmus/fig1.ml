(* Figure 1 of the paper: a racy C++11 program using atomic operations.

     T1: nax = 1; x.store(1, release); y.store(1, release)
     T2: if (y.load(relaxed) == 1 && x.load(relaxed) == 0)
           x.store(2, relaxed)
     T3: if (x.load(acquire) > 0) print(nax)

   The race on [nax] requires T2 to observe the y-store but an older
   x-store — impossible under SC, allowed under C++11. When T3 then
   reads T2's relaxed store, nothing synchronises it with T1's write of
   nax, and the read races. Detected by tsan11(+rec), missed by plain
   happens-before tools that assume SC atomics. *)

open T11r_vm

let program () =
  Api.program ~name:"fig1" (fun () ->
      let nax = Api.Var.create ~name:"nax" 0 in
      let x = Api.Atomic.create ~name:"x" 0 in
      let y = Api.Atomic.create ~name:"y" 0 in
      let t1 =
        Api.Thread.spawn ~name:"T1" (fun () ->
            Api.Var.set nax 1;
            Api.Atomic.store ~mo:Release x 1;
            Api.Atomic.store ~mo:Release y 1)
      in
      let t2 =
        Api.Thread.spawn ~name:"T2" (fun () ->
            if
              Api.Atomic.load ~mo:Relaxed y = 1
              && Api.Atomic.load ~mo:Relaxed x = 0
            then Api.Atomic.store ~mo:Relaxed x 2)
      in
      let t3 =
        Api.Thread.spawn ~name:"T3" (fun () ->
            if Api.Atomic.load ~mo:Acquire x > 0 then
              Api.Sys_api.print (string_of_int (Api.Var.get nax)))
      in
      Api.Thread.join t1;
      Api.Thread.join t2;
      Api.Thread.join t3)
