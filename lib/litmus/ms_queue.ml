(* CDSchecker "ms-queue": the Michael–Scott non-blocking queue.

   Two threads each enqueue and dequeue through the usual CAS loops on
   head/tail. Nodes live in a preallocated pool indexed by atomics (as
   in the CDSchecker port, which cannot use real dynamic allocation).

   The seeded bug is unconditional: both threads bump a shared,
   non-atomic operation counter on every enqueue — the kind of
   statistics counter real code bolts onto a lock-free structure. It
   races on every execution, which is why Table 1 shows a 100% rate for
   every tool. The benchmark also iterates far more than the others,
   making it the slowest row of the table. *)

open T11r_vm

let iterations = 60

(* Node pool: values and next pointers as parallel atomic arrays.
   Index 0 is the initial dummy node; 0 in a next-slot means null. *)
let pool_size = 256

let program () =
  Api.program ~name:"ms-queue" (fun () ->
      let values = Array.init pool_size (fun i ->
          Api.Atomic.create ~name:(Printf.sprintf "val%d" i) 0)
      in
      let nexts = Array.init pool_size (fun i ->
          Api.Atomic.create ~name:(Printf.sprintf "next%d" i) 0)
      in
      let head = Api.Atomic.create ~name:"head" 0 in
      let tail = Api.Atomic.create ~name:"tail" 0 in
      let free = Api.Atomic.create ~name:"free" 1 in  (* bump node allocator *)
      let op_count = Api.Var.create ~name:"op_count" 0 in
      let enqueue v =
        let node = Api.Atomic.fetch_add ~mo:Relaxed free 1 in
        if node >= pool_size then failwith "ms-queue: pool exhausted";
        Api.Atomic.store ~mo:Relaxed values.(node) v;
        Api.Atomic.store ~mo:Relaxed nexts.(node) 0;
        (* BUG (unconditional): non-atomic shared statistics counter. *)
        Api.Var.incr op_count;
        let rec link () =
          let t = Api.Atomic.load ~mo:Acquire tail in
          let next = Api.Atomic.load ~mo:Acquire nexts.(t) in
          if next = 0 then begin
            let ok, _ =
              Api.Atomic.compare_exchange ~success:Release ~failure:Relaxed
                nexts.(t) ~expected:0 ~desired:node
            in
            if ok then
              ignore
                (Api.Atomic.compare_exchange ~success:Release ~failure:Relaxed
                   tail ~expected:t ~desired:node)
            else link ()
          end
          else begin
            (* Help swing the lagging tail. *)
            ignore
              (Api.Atomic.compare_exchange ~success:Release ~failure:Relaxed
                 tail ~expected:t ~desired:next);
            link ()
          end
        in
        link ()
      in
      let dequeue () =
        let rec go () =
          let h = Api.Atomic.load ~mo:Acquire head in
          let next = Api.Atomic.load ~mo:Acquire nexts.(h) in
          if next = 0 then None
          else begin
            let v = Api.Atomic.load ~mo:Relaxed values.(next) in
            let ok, _ =
              Api.Atomic.compare_exchange ~success:Release ~failure:Relaxed
                head ~expected:h ~desired:next
            in
            if ok then Some v else go ()
          end
        in
        go ()
      in
      let worker base () =
        for i = 1 to iterations do
          enqueue (base + i);
          ignore (dequeue ())
        done
      in
      let t1 = Api.Thread.spawn ~name:"w1" (worker 0) in
      let t2 = Api.Thread.spawn ~name:"w2" (worker 1000) in
      Api.Thread.join t1;
      Api.Thread.join t2;
      Api.Sys_api.print (Printf.sprintf "ops=%d" (Api.Var.get op_count)))
