(* Seqlock (extension benchmark, not part of the paper's Table 1).

   The classic sequence lock: a writer bumps the sequence counter to an
   odd value, updates the payload, and bumps it back to even; a reader
   snapshots the counter, reads the payload, and retries if the counter
   changed or was odd.

   The seeded bug is the well-known one: the reader's *validation* load
   uses [Relaxed] instead of [Acquire] ordering, so the payload reads
   are not ordered before the second counter check — the reader can
   validate against a stale counter and use torn data it read while the
   writer was mid-update. The race manifests only when the reader's
   window overlaps the writer's, which under arrival-order schedules is
   rare (the writer starts after a delay) and under random scheduling is
   common — the same profile as the Table 1 "rnd-only" benchmarks. *)

open T11r_vm

let writer_delay_us = 220
let reader_attempts = 3

let program () =
  Api.program ~name:"seqlock" (fun () ->
      let seq = Api.Atomic.create ~name:"seq" 0 in
      let data1 = Api.Var.create ~name:"data1" 0 in
      let data2 = Api.Var.create ~name:"data2" 0 in
      let writer =
        Api.Thread.spawn ~name:"writer" (fun () ->
            Api.work writer_delay_us;
            Api.Atomic.store ~mo:Relaxed seq 1 (* BUG: not Release-paired *);
            Api.Var.set data1 7;
            Api.Var.set data2 7;
            Api.Atomic.store ~mo:Release seq 2)
      in
      let reader =
        Api.Thread.spawn ~name:"reader" (fun () ->
            let done_ = ref false in
            let i = ref 0 in
            while (not !done_) && !i < reader_attempts do
              incr i;
              let s1 = Api.Atomic.load ~mo:Acquire seq in
              if s1 = 1 then begin
                (* Reader overlaps the writer: with the buggy relaxed
                   validation it proceeds to use the data anyway. *)
                let v1 = Api.Var.get data1 in
                let v2 = Api.Var.get data2 in
                let s2 = Api.Atomic.load ~mo:Relaxed seq (* BUG *) in
                ignore s2;
                Api.Sys_api.print (Printf.sprintf "torn=%d,%d" v1 v2);
                done_ := true
              end
              else if s1 = 2 then begin
                let v1 = Api.Var.get data1 in
                let v2 = Api.Var.get data2 in
                Api.Sys_api.print (Printf.sprintf "ok=%d,%d" v1 v2);
                done_ := true
              end
            done;
            if not !done_ then Api.Sys_api.print "quiet")
      in
      Api.Thread.join writer;
      Api.Thread.join reader)

(* The repaired reader validates with acquire ordering and retries on a
   torn window instead of consuming it; reads that complete under an
   even, unchanged sequence are ordered after the writer's release. *)
let fixed_program () =
  Api.program ~name:"seqlock-fixed" (fun () ->
      let seq = Api.Atomic.create ~name:"seq" 0 in
      let data1 = Api.Var.create ~name:"data1" 0 in
      let data2 = Api.Var.create ~name:"data2" 0 in
      let writer =
        Api.Thread.spawn ~name:"writer" (fun () ->
            Api.work writer_delay_us;
            Api.Atomic.store ~mo:Release seq 1;
            Api.Var.set data1 7;
            Api.Var.set data2 7;
            Api.Atomic.store ~mo:Release seq 2)
      in
      let reader =
        Api.Thread.spawn ~name:"reader" (fun () ->
            let done_ = ref false in
            let i = ref 0 in
            while (not !done_) && !i < reader_attempts + 30 do
              incr i;
              let s1 = Api.Atomic.load ~mo:Acquire seq in
              if s1 = 2 then begin
                let v1 = Api.Var.get data1 in
                let v2 = Api.Var.get data2 in
                let s2 = Api.Atomic.load ~mo:Acquire seq in
                if s1 = s2 then begin
                  Api.Sys_api.print (Printf.sprintf "ok=%d,%d" v1 v2);
                  done_ := true
                end
              end
              else Api.work 40
            done;
            if not !done_ then Api.Sys_api.print "quiet")
      in
      Api.Thread.join writer;
      Api.Thread.join reader)
