(* CDSchecker "chase-lev-deque": the Chase–Lev work-stealing deque.

   The owner pushes work items at the bottom; a thief steals from the
   top. The seeded bug: the owner's bottom store after a push is
   [Relaxed], so a thief that observes the fully-pushed state without
   an acquire edge reads the freshly written task payload racily.

   Table 1's quirk — the one benchmark where uncontrolled tsan11 finds
   *more* races than random scheduling — comes from the shape of the
   bad interleaving: the owner must complete a long run of pushes
   (29 visible ops in the paper's trace) before the thief performs its
   few steal operations. Arrival-order scheduling produces exactly
   "owner streams, thief arrives late"; uniform random scheduling
   almost never keeps the owner scheduled 29 times in a row. We mirror
   that: the thief steals once, after a delay comparable to the owner's
   whole push sequence, and only touches the payload if it observed the
   final bottom value. *)

open T11r_vm

let pushes = 29
let thief_delay_us = 200

let program () =
  Api.program ~name:"chase-lev-deque" (fun () ->
      let tasks = Api.Var.create ~name:"task_slot" 0 in
      let bottom = Api.Atomic.create ~name:"bottom" 0 in
      let top = Api.Atomic.create ~name:"top" 0 in
      let owner =
        Api.Thread.spawn ~name:"owner" (fun () ->
            for i = 1 to pushes do
              (* push: write the task, then bump bottom. *)
              if i = pushes then Api.Var.set tasks i;
              Api.Atomic.store ~mo:Relaxed bottom i (* BUG: not Release *)
            done)
      in
      let thief =
        Api.Thread.spawn ~name:"thief" (fun () ->
            Api.work thief_delay_us;
            let t = Api.Atomic.load ~mo:Acquire top in
            let b = Api.Atomic.load ~mo:Relaxed bottom (* BUG: not Acquire *) in
            if b = pushes && t < b then begin
              (* steal: CAS top forward, then use the task — racily. *)
              let ok, _ =
                Api.Atomic.compare_exchange ~success:Seq_cst ~failure:Relaxed
                  top ~expected:t ~desired:(t + 1)
              in
              if ok then
                Api.Sys_api.print
                  (Printf.sprintf "stole=%d" (Api.Var.get tasks))
            end
            else Api.Sys_api.print "empty")
      in
      Api.Thread.join owner;
      Api.Thread.join thief)
