(* CDSchecker "linuxrwlocks": the Linux-kernel style reader-writer
   spinlock, ported to C++11 atomics.

   Lock word protocol: 0 = free, -1 = write-locked, n > 0 = n readers.
   The seeded bug (as in the CDSchecker port): the writer's unlock store
   and the reader's trylock CAS both use [Relaxed], so a reader that
   acquires the lock after a writer released it is not synchronised
   with the writer's critical section — its read of the protected data
   races with the writer's update.

   The reader only touches the data if its bounded trylock loop actually
   observes the post-writer state (lock word back to 0 *after* the
   writer's generation bump), which under arrival-order schedules almost
   never happens before the reader gives up — hence tsan11 0.1% /
   queue 0.0% / random ~62% in Table 1. *)

open T11r_vm

let writer_work_us = 300
let reader_attempts = 3

let program () =
  Api.program ~name:"linuxrwlocks" (fun () ->
      let data = Api.Var.create ~name:"rwdata" 0 in
      let lock = Api.Atomic.create ~name:"rwlock" 0 in
      let generation = Api.Atomic.create ~name:"generation" 0 in
      let writer =
        Api.Thread.spawn ~name:"writer" (fun () ->
            Api.work writer_work_us;
            (* write_lock: CAS 0 -> -1 *)
            let rec acquire () =
              let ok, _ =
                Api.Atomic.compare_exchange ~success:Relaxed ~failure:Relaxed
                  lock ~expected:0 ~desired:(-1)
              in
              if not ok then begin
                Api.work 10;
                acquire ()
              end
            in
            acquire ();
            Api.Var.set data 1;
            Api.Atomic.store ~mo:Relaxed generation 1 (* BUG: not Release *);
            Api.Atomic.store ~mo:Relaxed lock 0 (* BUG: not Release *))
      in
      let reader =
        Api.Thread.spawn ~name:"reader" (fun () ->
            let got = ref false in
            let i = ref 0 in
            while (not !got) && !i < reader_attempts do
              incr i;
              (* read_trylock: increment if not write-locked, but only
                 proceed to the data once the writer's generation is
                 visible. *)
              if Api.Atomic.load ~mo:Relaxed generation = 1 then begin
                let ok, _ =
                  Api.Atomic.compare_exchange ~success:Relaxed ~failure:Relaxed
                    lock ~expected:0 ~desired:1
                in
                if ok then got := true
              end
            done;
            if !got then begin
              Api.Sys_api.print (Printf.sprintf "read=%d" (Api.Var.get data));
              ignore (Api.Atomic.fetch_add ~mo:Relaxed lock (-1))
            end
            else Api.Sys_api.print "gave-up")
      in
      Api.Thread.join writer;
      Api.Thread.join reader)
