(* CDSchecker "mpmc-queue": a bounded multi-producer/multi-consumer
   ring buffer (Dmitry Vyukov's design, as ported by CDSchecker).

   Producers claim a slot by fetch-add on the write cursor, write the
   element non-atomically, then publish the slot's sequence number.
   Consumers poll the slot sequence and read the element. The seeded
   bug: the publish store is [Relaxed], so a consumer that observes the
   sequence bump is not synchronised with the producer's element write
   — the element read races.

   The consumer polls a bounded number of times, making the race
   conditional on the publish landing inside the poll window: ~60%
   under random, ~0% under arrival-order strategies (Table 1). *)

open T11r_vm

let producer_work_us = 250
let poll_bound = 3

let program () =
  Api.program ~name:"mpmc-queue" (fun () ->
      let slot = Api.Var.create ~name:"slot0" 0 in
      let seq = Api.Atomic.create ~name:"seq0" 0 in
      let wcursor = Api.Atomic.create ~name:"wcursor" 0 in
      let producer =
        Api.Thread.spawn ~name:"producer" (fun () ->
            Api.work producer_work_us;
            let idx = Api.Atomic.fetch_add ~mo:Relaxed wcursor 1 in
            assert (idx = 0);
            Api.Var.set slot 99;
            Api.Atomic.store ~mo:Relaxed seq 1 (* BUG: should be Release *))
      in
      let consumer =
        Api.Thread.spawn ~name:"consumer" (fun () ->
            let got = ref false in
            let i = ref 0 in
            while (not !got) && !i < poll_bound do
              incr i;
              if Api.Atomic.load ~mo:Relaxed seq = 1 (* BUG: not Acquire *)
              then got := true
            done;
            if !got then
              Api.Sys_api.print (Printf.sprintf "pop=%d" (Api.Var.get slot))
            else Api.Sys_api.print "empty")
      in
      Api.Thread.join producer;
      Api.Thread.join consumer)

(* The repaired publish: release sequence bump, acquire poll. *)
let fixed_program () =
  Api.program ~name:"mpmc-queue-fixed" (fun () ->
      let slot = Api.Var.create ~name:"slot0" 0 in
      let seq = Api.Atomic.create ~name:"seq0" 0 in
      let wcursor = Api.Atomic.create ~name:"wcursor" 0 in
      let producer =
        Api.Thread.spawn ~name:"producer" (fun () ->
            Api.work producer_work_us;
            let idx = Api.Atomic.fetch_add ~mo:Relaxed wcursor 1 in
            assert (idx = 0);
            Api.Var.set slot 99;
            Api.Atomic.store ~mo:Release seq 1)
      in
      let consumer =
        Api.Thread.spawn ~name:"consumer" (fun () ->
            let got = ref false in
            let i = ref 0 in
            while (not !got) && !i < poll_bound + 30 do
              incr i;
              if Api.Atomic.load ~mo:Acquire seq = 1 then got := true
              else Api.work 40
            done;
            if !got then
              Api.Sys_api.print (Printf.sprintf "pop=%d" (Api.Var.get slot))
            else Api.Sys_api.print "empty")
      in
      Api.Thread.join producer;
      Api.Thread.join consumer)
