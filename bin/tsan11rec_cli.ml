(* The tsan11rec command-line tool.

   Subcommands mirror how the paper's tool is used:
     list              show the available workloads
     run WORKLOAD      one execution under a chosen tool configuration
                       (--tsan prints ThreadSanitizer-style warnings)
     record WORKLOAD   record a demo
     replay WORKLOAD   replay a demo (reports desynchronisation;
                       --salvage recovers a truncated recording first)
     hunt WORKLOAD     repeated controlled runs hunting for races
                       (--resume picks up an interrupted campaign;
                       --guided breeds seeds from a coverage corpus)
     explore WORKLOAD  schedule-coverage report with race sightings
     check WORKLOAD    bounded systematic exploration (model checking)
     icb WORKLOAD      smallest preemption bound exposing a failure
     trace WORKLOAD    run (or replay) with event tracing, export
                       Chrome trace-event JSON for Perfetto
     predict           offline predictive race analysis over a recorded
                       demo (or a campaign journal); --verify confirms
                       each predicted pair by scheduling its witness
     demo-info DIR     summarise and integrity-check a recorded demo *)

open Cmdliner
module Conf = Tsan11rec.Conf
module Interp = Tsan11rec.Interp
module Demo = Tsan11rec.Demo
module Policy = Tsan11rec.Policy
module World = T11r_env.World
module Workloads = T11r_harness.Workloads
module Campaign = T11r_harness.Campaign
module Guided = T11r_harness.Guided
module Corpus = T11r_harness.Corpus
module Predictor = T11r_harness.Predictor
module Predict = T11r_race.Predict

(* ---- exit codes ---------------------------------------------------- *)

(* One code per structured outcome so scripts and CI can branch without
   parsing output (also listed in every subcommand's EXIT STATUS):
     0 completed (replay: faithfully)      1 campaign found bugs
     2 usage error                         3 corrupt/unreadable demo
     4 deadline or tick budget exhausted   5 program crashed
     6 deadlock                            7 hard replay desync
     8 workload unsupported                9 application error
    10 soft replay desync                130 interrupted (SIGINT) *)
let exit_of (r : Interp.result) =
  match r.outcome with
  | Interp.Completed -> if r.soft_desync then 10 else 0
  | Interp.Corrupt_demo _ -> 3
  | Interp.Timeout | Interp.Tick_limit -> 4
  | Interp.Crashed _ -> 5
  | Interp.Deadlock _ -> 6
  | Interp.Hard_desync _ -> 7
  | Interp.Unsupported_app _ -> 8
  | Interp.App_error _ -> 9

let defaults_sans_ok =
  List.filter
    (fun i -> Cmd.Exit.info_code i <> Cmd.Exit.ok)
    Cmd.Exit.defaults

let outcome_exits =
  [
    Cmd.Exit.info 0 ~doc:"the run completed (for replay: faithfully).";
    Cmd.Exit.info 3 ~doc:"the demo directory is corrupt or unreadable.";
    Cmd.Exit.info 4
      ~doc:"the run exhausted its wall-clock deadline or tick budget.";
    Cmd.Exit.info 5 ~doc:"the program crashed (failed assertion).";
    Cmd.Exit.info 6 ~doc:"the program deadlocked.";
    Cmd.Exit.info 7 ~doc:"replay desynchronised beyond recovery.";
    Cmd.Exit.info 8
      ~doc:"the workload is unsupported under this configuration.";
    Cmd.Exit.info 9 ~doc:"the application reported an error.";
    Cmd.Exit.info 10 ~doc:"replay completed but soft-desynchronised.";
  ]
  @ defaults_sans_ok

let campaign_exits =
  [
    Cmd.Exit.info 0 ~doc:"the campaign finished with no findings.";
    Cmd.Exit.info 1 ~doc:"the campaign found races, crashes or deadlocks.";
    Cmd.Exit.info 130
      ~doc:
        "interrupted (SIGINT): in-flight runs were drained and journalled; \
         rerun with $(b,--resume) to continue.";
  ]
  @ defaults_sans_ok

(* ---- SIGINT draining ----------------------------------------------- *)

(* First Ctrl-C: stop claiming new runs, let in-flight ones finish and
   reach the journal, print a partial report. Second Ctrl-C: abort. *)
let interrupted = Atomic.make false
let cancel () = Atomic.get interrupted

let install_sigint () =
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if Atomic.get interrupted then exit 130
         else begin
           Atomic.set interrupted true;
           prerr_endline
             "interrupt: draining in-flight runs (Ctrl-C again to abort)"
         end))

(* ---- positional / subcommand-specific arguments -------------------- *)

let workload_arg =
  let doc = "Workload to run (see `list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let tool_arg =
  let doc =
    "Tool configuration: native, tsan11, rr, tsan11+rr, or tsan11rec."
  in
  Arg.(value & opt string "tsan11rec" & info [ "tool" ] ~docv:"TOOL" ~doc)

let demo_arg =
  let doc = "Demo directory." in
  Arg.(value & opt string "demo" & info [ "demo"; "d" ] ~docv:"DIR" ~doc)

(* ---- the shared flag-spec table ------------------------------------ *)

(* Every option shared by two or more subcommands is declared exactly
   once below — one name set, one docstring, one parser, one validation
   path — and subcommands select the rows they take by listing [flag]
   values. Unselected rows parse as their defaults and stay out of that
   subcommand's $(b,--help). *)

type flag =
  | Strategy
  | Seed
  | Env_seed
  | Runs
  | Jobs
  | Deadline
  | Tick_budget
  | Retries
  | Journal
  | Fault_p
  | Fault_seed
  | On_desync
  | Dpor

(* The parsed, validated values of every shared flag (defaults for the
   rows a subcommand did not select). *)
type common = {
  co_strategy : Conf.strategy;
  co_strategy_name : string;
  co_seed : int;
  co_env_seed : int;
  co_runs : int;
  co_jobs : int;  (* already resolved: never 0 *)
  co_deadline : float;
  co_tick_budget : int option;
  co_retries : int;
  co_journal : string option;
  co_fault_p : float;
  co_fault_seed : int;
  co_on_desync : Conf.desync_mode;
  co_dpor : bool;
}

let strategy_row =
  let doc =
    "Scheduling strategy for tsan11rec: random, queue, pct:D, db:D, or pb:B."
  in
  Arg.(value & opt string "random" & info [ "strategy"; "s" ] ~docv:"STRAT" ~doc)

let seed_row =
  let doc = "Scheduler PRNG seed (two seeds are derived from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let env_seed_row =
  let doc = "Environment (external world) seed." in
  Arg.(value & opt int 42 & info [ "env-seed" ] ~docv:"N" ~doc)

let runs_row =
  let doc = "Number of runs." in
  Arg.(value & opt int 100 & info [ "runs"; "n" ] ~docv:"N" ~doc)

let jobs_row =
  let doc =
    "Worker domains for campaign subcommands: 1 (default) runs \
     sequentially, 0 uses every core ($(b,T11R_JOBS) overrides the \
     auto-detected count). Results are identical for every value."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let deadline_row =
  let doc =
    "Per-run wall-clock deadline in seconds: a wedged run is cut off with \
     a $(b,timeout) outcome (exit 4) instead of hanging its worker. 0 \
     disables. Wall time is nondeterministic — use $(b,--tick-budget) \
     when the campaign digest must be reproducible."
  in
  Arg.(value & opt float 0.0 & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let tick_budget_row =
  let doc =
    "Deterministic per-run budget: cap every run at $(docv) critical \
     sections (a $(b,tick-limit) outcome, exit 4), identically on every \
     host and at every $(b,--jobs)."
  in
  Arg.(value & opt (some int) None & info [ "tick-budget" ] ~docv:"N" ~doc)

let retries_row =
  let doc =
    "Retry a run whose worker raised up to $(docv) times (exponential \
     backoff) before quarantining it as a $(b,crashed) result; the \
     campaign always completes."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let journal_row =
  let doc =
    "Append every completed run to this checksummed JSONL journal and \
     skip runs it already holds. $(b,--resume) and $(b,--journal) are the \
     same option: pointing it at the journal of an interrupted or killed \
     campaign continues exactly where it stopped, and the final report \
     and digest are bit-identical to an uninterrupted run."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "resume"; "journal" ] ~docv:"FILE" ~doc)

let fault_p_row =
  let doc =
    "Inject environment faults (transient EAGAIN/EINTR, connection resets, \
     short transfers) with this per-syscall probability (in [0,1])."
  in
  Arg.(value & opt float 0.0 & info [ "fault-p" ] ~docv:"P" ~doc)

let fault_seed_row =
  let doc = "Seed for the fault plan's PRNG." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc)

let on_desync_row =
  let doc =
    "Replay divergence handling: abort (stop with a hard desync, the \
     default), diagnose (stop with a structured divergence report), or \
     resync (best-effort continuation, counting divergences)."
  in
  Arg.(value & opt string "abort" & info [ "on-desync" ] ~docv:"MODE" ~doc)

let dpor_row =
  let on =
    Arg.info [ "dpor" ]
      ~doc:
        "Dynamic partial-order reduction for $(b,check) (the default): \
         prune schedules that only reorder independent operations. The \
         reduced exploration reports the same distinct outcomes and \
         races as the exhaustive one, in far fewer runs."
  in
  let off =
    Arg.info [ "no-dpor" ]
      ~doc:
        "Disable partial-order reduction: try every enabled thread at \
         every scheduling point. Slower; useful as a soundness oracle."
  in
  Arg.(value & vflag true [ (true, on); (false, off) ])

let usage fmt = Fmt.kstr (fun m -> Fmt.epr "%s@." m; exit 2) fmt

let strategy_of name =
  match Conf.strategy_of_name name with
  | Some s -> s
  | None -> (
      match name with
      | "rnd" -> Conf.Random
      | _ -> usage "unknown strategy %S (random|queue|pct:D|db:D|pb:B)" name)

let resolve_jobs j =
  if j < 0 then usage "--jobs must be >= 0 (got %d)" j
  else if j = 0 then T11r_harness.Pool.default_jobs ()
  else j

(* One validating constructor behind every subcommand: strategy and
   desync-mode names parse (or exit 2) here, --jobs resolves here,
   --fault-p range-checks here — identically wherever the flag appears. *)
let common_term flags =
  let pick fl term default =
    if List.mem fl flags then term else Term.const default
  in
  let build strategy seed env_seed runs jobs deadline tick_budget retries
      journal fault_p fault_seed on_desync dpor =
    if runs < 1 then usage "--runs must be >= 1 (got %d)" runs;
    if deadline < 0.0 then usage "--deadline must be >= 0 (got %g)" deadline;
    if retries < 0 then usage "--retries must be >= 0 (got %d)" retries;
    if fault_p < 0.0 || fault_p > 1.0 then
      usage "--fault-p must be in [0,1] (got %g)" fault_p;
    (match tick_budget with
    | Some b when b < 1 -> usage "--tick-budget must be >= 1 (got %d)" b
    | _ -> ());
    {
      co_strategy = strategy_of strategy;
      co_strategy_name = strategy;
      co_seed = seed;
      co_env_seed = env_seed;
      co_runs = runs;
      co_jobs = resolve_jobs jobs;
      co_deadline = deadline;
      co_tick_budget = tick_budget;
      co_retries = retries;
      co_journal = journal;
      co_fault_p = fault_p;
      co_fault_seed = fault_seed;
      co_on_desync =
        (match Conf.desync_mode_of_name on_desync with
        | Some m -> m
        | None -> usage "unknown desync mode %S (abort|diagnose|resync)" on_desync);
      co_dpor = dpor;
    }
  in
  Term.(
    const build
    $ pick Strategy strategy_row "random"
    $ pick Seed seed_row 1
    $ pick Env_seed env_seed_row 42
    $ pick Runs runs_row 100
    $ pick Jobs jobs_row 1
    $ pick Deadline deadline_row 0.0
    $ pick Tick_budget tick_budget_row None
    $ pick Retries retries_row 0
    $ pick Journal journal_row None
    $ pick Fault_p fault_p_row 0.0
    $ pick Fault_seed fault_seed_row 1
    $ pick On_desync on_desync_row "abort"
    $ pick Dpor dpor_row true)

(* ---- configuration construction ------------------------------------ *)

let lookup_workload name =
  match Workloads.find name with
  | Some w -> w
  | None -> usage "unknown workload %S; try `list'" name

(* Every configuration the CLI hands to the interpreter goes through
   the builder API and then [Conf.validate] — a flag combination the
   library rejects is a usage error, not a crash mid-run. *)
let validated conf =
  match Conf.validate conf with
  | Ok c -> c
  | Error msg -> usage "invalid configuration: %s" msg

let base_conf ~tool ~strategy =
  match tool with
  | "native" -> Conf.native
  | "tsan11" -> Conf.tsan11
  | "rr" -> Conf.rr_model
  | "tsan11+rr" -> Conf.tsan11_rr
  | "tsan11rec" -> Conf.tsan11rec ~strategy ()
  | _ -> usage "unknown tool %S" tool

let prepare ~w ~conf ~seed ~env_seed ?(fault_p = 0.0) ?(fault_seed = 1) ~mode () =
  let conf = Conf.with_mode conf mode in
  let conf = Conf.with_policy conf w.Workloads.w_policy in
  let conf =
    Conf.with_seeds conf (Int64.of_int seed) (Int64.of_int (seed + 7919))
  in
  let conf = validated conf in
  let faults =
    if fault_p > 0.0 then
      T11r_env.Fault.uniform ~seed:(Int64.of_int fault_seed) ~p:fault_p ()
    else T11r_env.Fault.none
  in
  let world = World.create ~seed:(Int64.of_int env_seed) ~faults () in
  let build = w.Workloads.w_instance world in
  (conf, world, build)

let report (r : Interp.result) =
  Fmt.pr "outcome:   %a@." Interp.pp_outcome r.outcome;
  Fmt.pr "makespan:  %.3f ms (simulated)@."
    (float_of_int r.makespan_us /. 1000.0);
  Fmt.pr "ticks:     %d critical sections@." r.ticks;
  Fmt.pr "metrics:   %a@." T11r_obs.Metrics.pp r.metrics;
  Fmt.pr "races:     %d distinct report(s)@." r.race_count;
  List.iter (fun rep -> Fmt.pr "  %a@." T11r_race.Report.pp rep) r.races;
  List.iter
    (fun c -> Fmt.pr "  %a@." T11r_race.Lockorder.pp_cycle c)
    r.lock_cycles;
  if r.soft_desync then Fmt.pr "NOTE: replay soft-desynchronised@.";
  if r.desync_count > 0 then
    Fmt.pr "desyncs:   %d divergence(s) survived@." r.desync_count;
  List.iter (fun d -> Fmt.pr "%a@." Interp.pp_divergence d) r.divergences;
  (match r.demo with
  | Some d -> Fmt.pr "demo:      %a@." Demo.pp_summary d
  | None -> ());
  if String.length r.output > 0 then
    Fmt.pr "---- program output ----@.%s@." r.output

(* ---- subcommands --------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Workloads.t) -> Fmt.pr "%-18s %s@." w.w_name w.w_desc)
      Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads")
    Term.(const run $ const ())

let run_cmd =
  let run name tool co tsan_style =
    let w = lookup_workload name in
    let conf, world, build =
      prepare ~w
        ~conf:(base_conf ~tool ~strategy:co.co_strategy)
        ~seed:co.co_seed ~env_seed:co.co_env_seed ~fault_p:co.co_fault_p
        ~fault_seed:co.co_fault_seed ~mode:Conf.Free ()
    in
    let r = Interp.run ~world conf (build ()) in
    if tsan_style then begin
      List.iter
        (fun race ->
          print_string
            (T11r_race.Reportfmt.race ~thread_names:r.thread_names race))
        r.races;
      List.iter
        (fun c ->
          print_string
            (T11r_race.Reportfmt.lock_cycle ~thread_names:r.thread_names c))
        r.lock_cycles;
      let s =
        T11r_race.Reportfmt.summary ~races:r.races ~cycles:r.lock_cycles
      in
      if s <> "" then print_endline s
    end;
    report r;
    exit (exit_of r)
  in
  let tsan_flag =
    Arg.(
      value & flag
      & info [ "tsan" ] ~doc:"Print ThreadSanitizer-style warning blocks.")
  in
  Cmd.v
    (Cmd.info "run" ~exits:outcome_exits
       ~doc:"Run a workload once under a tool configuration")
    Term.(
      const run $ workload_arg $ tool_arg
      $ common_term [ Strategy; Seed; Env_seed; Fault_p; Fault_seed ]
      $ tsan_flag)

(* A seed-derived pseudo-random guided prefix: recording under the
   guided strategy is what captures the DECISIONS metadata `predict'
   consumes, and a randomised prefix diversifies the schedules a batch
   of recordings explores (beyond the prefix the strategy follows
   index 0 deterministically). *)
let guided_prefix_of_seed = Predictor.recording_prefix

let record_cmd =
  let run name co demo guided =
    let w = lookup_workload name in
    let strategy =
      if guided then
        Conf.Guided
          { prefix = guided_prefix_of_seed co.co_seed; observed = ref [] }
      else co.co_strategy
    in
    let conf, world, build =
      prepare ~w
        ~conf:(base_conf ~tool:"tsan11rec" ~strategy)
        ~seed:co.co_seed ~env_seed:co.co_env_seed ~fault_p:co.co_fault_p
        ~fault_seed:co.co_fault_seed ~mode:(Conf.Record demo) ()
    in
    let r = Interp.run ~world conf (build ()) in
    report r;
    if co.co_fault_p > 0.0 then
      Fmt.pr "faults:    %d injected@." (World.faults_injected world);
    Fmt.pr "recorded demo in %s@." demo;
    if guided then
      Fmt.pr "decisions: %d step(s) captured — analyse with `predict --demo %s'@."
        (Array.length r.decisions) demo;
    exit (exit_of r)
  in
  let guided_flag =
    Arg.(
      value & flag
      & info [ "guided" ]
          ~doc:
            "Record under the guided strategy with a seed-derived schedule \
             prefix. The recording then carries per-decision metadata \
             (DECISIONS) enabling offline predictive race analysis \
             ($(b,predict)).")
  in
  Cmd.v
    (Cmd.info "record" ~exits:outcome_exits
       ~doc:"Record a demo of one execution")
    Term.(
      const run $ workload_arg
      $ common_term [ Strategy; Seed; Env_seed; Fault_p; Fault_seed ]
      $ demo_arg $ guided_flag)

let replay_cmd =
  let run name co demo salvage =
    let w = lookup_workload name in
    let demo =
      if not salvage then demo
      else
        match Demo.load ~dir:demo with
        | (_ : Demo.t) -> demo (* intact: replay it as-is *)
        | exception Demo.Corrupt c -> (
            Fmt.epr "demo corrupt: %s@." (Demo.corruption_to_string c);
            match Demo.salvage ~dir:demo with
            | Error c ->
                Fmt.epr "cannot salvage: %s@." (Demo.corruption_to_string c);
                exit 3
            | Ok (d, rep) ->
                let out = demo ^ ".salvaged" in
                T11r_util.Tmp.rm_rf out;
                Demo.save d ~dir:out;
                List.iter
                  (fun (f, n) ->
                    if n > 0 then
                      Fmt.epr "  %s: dropped %d damaged line(s)@." f n)
                  rep.Demo.sv_dropped;
                Fmt.epr "salvaged %d-tick prefix -> %s@." d.Demo.meta.ticks out;
                out)
    in
    let conf, world, build =
      prepare ~w
        ~conf:(base_conf ~tool:"tsan11rec" ~strategy:co.co_strategy)
        ~seed:0 ~env_seed:co.co_env_seed ~mode:(Conf.Replay demo) ()
    in
    let conf = Conf.with_on_desync conf co.co_on_desync in
    let r = Interp.run ~world conf (build ()) in
    report r;
    exit (exit_of r)
  in
  let salvage_flag =
    Arg.(
      value & flag
      & info [ "salvage" ]
          ~doc:
            "If the demo fails its integrity check (truncated or damaged \
             files), recover the longest intact prefix into \
             $(i,DIR).salvaged and replay that — usually enough to reach \
             the recorded bug.")
  in
  Cmd.v
    (Cmd.info "replay" ~exits:outcome_exits
       ~doc:"Replay a recorded demo (checks for desync)")
    Term.(
      const run $ workload_arg
      $ common_term [ Strategy; Env_seed; On_desync ]
      $ demo_arg $ salvage_flag)

(* hunt: the classic blind campaign, or — with --guided — the
   coverage-guided loop breeding candidates from a corpus. *)

let guided_flag =
  Arg.(
    value & flag
    & info [ "guided" ]
        ~doc:
          "Coverage-guided hunting: collect a per-run schedule-coverage \
           fingerprint, keep the seeds that reached new coverage in a \
           corpus, and breed each round's candidates from it. $(b,--runs) \
           becomes the total run budget (rounds of $(b,--batch) runs); \
           results are bit-identical at every $(b,--jobs).")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "With $(b,--guided): persist the corpus and per-round run \
           journals in $(docv). Re-running with the same directory resumes \
           a killed hunt and reproduces the uninterrupted digest.")

let batch_arg =
  Arg.(
    value & opt int 32
    & info [ "batch" ] ~docv:"N"
        ~doc:"With $(b,--guided): candidates bred and run per round.")

let fork_prefixes_flag =
  Arg.(
    value & flag
    & info [ "fork-prefixes" ]
        ~doc:
          "With $(b,--guided): fork candidate families that share a seed \
           pair and a schedule-prefix head from one interpreter snapshot \
           per domain instead of re-executing the shared head every run. \
           The report digest is bit-identical either way. Only sound for \
           workloads whose schedule cannot be steered by environment \
           timing (the syscall-free litmus suite qualifies).")

let hunt_cmd =
  let run name co guided corpus batch fork_prefixes =
    install_sigint ();
    let w = lookup_workload name in
    let base =
      validated
        (Conf.with_policy
           (base_conf ~tool:"tsan11rec" ~strategy:co.co_strategy)
           w.Workloads.w_policy)
    in
    (* The hunt's historical seed discipline, expressed as a campaign
       spec: scheduler seed i, environment seed env_seed + i, fault
       seed i — run i is a pure function of i, so the hunt shards. *)
    let spec =
      {
        Campaign.label = name;
        conf =
          (fun i ->
            Conf.with_seeds base (Int64.of_int i) (Int64.of_int (i + 7919)));
        instance =
          (fun i ->
            let faults =
              if co.co_fault_p > 0.0 then
                T11r_env.Fault.uniform ~seed:(Int64.of_int i) ~p:co.co_fault_p ()
              else T11r_env.Fault.none
            in
            let world =
              World.create ~seed:(Int64.of_int (co.co_env_seed + i)) ~faults ()
            in
            let build = w.Workloads.w_instance world in
            (world, build ()));
      }
    in
    if guided then begin
      if batch < 1 then usage "--batch must be >= 1 (got %d)" batch;
      let rounds = max 1 ((co.co_runs + batch - 1) / batch) in
      let g =
        Guided.hunt spec ~rounds ~batch ~jobs:co.co_jobs ?corpus_dir:corpus
          ~fork_prefixes ~deadline_s:co.co_deadline
          ?tick_budget:co.co_tick_budget ~cancel ()
      in
      Fmt.pr "%a" Guided.pp g;
      if g.Guided.g_interrupted then begin
        (match corpus with
        | Some dir ->
            Fmt.pr "INTERRUPTED; resume with --guided --corpus %s@." dir
        | None ->
            Fmt.pr
              "INTERRUPTED (no corpus directory — progress lost; use \
               --corpus DIR next time)@.");
        exit 130
      end;
      let crashed =
        List.fold_left
          (fun acc (k, v) -> if k = "crashed" then acc + v else acc)
          0 g.Guided.g_outcomes
      in
      Fmt.pr "digest:    %s@." (Guided.digest g);
      exit (if g.Guided.g_racy > 0 || crashed > 0 then 1 else 0)
    end;
    let c =
      Campaign.run spec ~n:co.co_runs ~jobs:co.co_jobs ~first:1
        ~deadline_s:co.co_deadline ?tick_budget:co.co_tick_budget
        ~retries:co.co_retries ?journal:co.co_journal ~cancel []
    in
    let crashed =
      List.fold_left (fun acc (k, v) -> if k = "crashed" then acc + v else acc)
        0 c.Campaign.outcomes
    in
    let sup = c.Campaign.supervision in
    Fmt.pr "%d runs (%s strategy): %d racy (%.1f%%), %d crashed@."
      sup.Campaign.sup_done co.co_strategy_name c.Campaign.racy_runs
      (100.0
      *. float_of_int c.Campaign.racy_runs
      /. float_of_int (max 1 sup.Campaign.sup_done))
      crashed;
    if sup.Campaign.sup_resumed > 0 then
      Fmt.pr "resumed:   %d run(s) replayed from the journal@."
        sup.Campaign.sup_resumed;
    if sup.Campaign.sup_timeouts > 0 then
      Fmt.pr "timeouts:  %d run(s) hit the %.1fs deadline@."
        sup.Campaign.sup_timeouts co.co_deadline;
    if sup.Campaign.sup_retried > 0 then
      Fmt.pr "retries:   %d attempt(s)@." sup.Campaign.sup_retried;
    (match sup.Campaign.sup_quarantined with
    | [] -> ()
    | q ->
        Fmt.pr "quarantined: %d run(s) kept crashing: %a@." (List.length q)
          Fmt.(list ~sep:(any ", ") int)
          (List.map fst q));
    (match c.Campaign.crashes with
    | (i, msg) :: _ ->
        Fmt.pr "first crash at seed %d: %s@." i msg;
        Fmt.pr "reproduce with: record %s -s %s --seed %d --env-seed %d@." name
          co.co_strategy_name i (co.co_env_seed + i)
    | [] -> ());
    if sup.Campaign.sup_interrupted then begin
      (match co.co_journal with
      | Some j ->
          Fmt.pr "INTERRUPTED after %d/%d runs; resume with --resume %s@."
            sup.Campaign.sup_done co.co_runs j
      | None ->
          Fmt.pr
            "INTERRUPTED after %d/%d runs (no journal — progress lost; use \
             --journal FILE next time)@."
            sup.Campaign.sup_done co.co_runs);
      exit 130
    end;
    Fmt.pr "digest:    %s@." (Campaign.digest c);
    exit (if c.Campaign.racy_runs > 0 || crashed > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "hunt" ~exits:campaign_exits
       ~doc:"Controlled concurrency testing: many seeds, race/crash counts")
    Term.(
      const run $ workload_arg
      $ common_term
          [
            Strategy; Runs; Env_seed; Fault_p; Jobs; Deadline; Tick_budget;
            Retries; Journal;
          ]
      $ guided_flag $ corpus_arg $ batch_arg $ fork_prefixes_flag)

let explore_cmd =
  let run name co =
    install_sigint ();
    let w = lookup_workload name in
    let spec =
      T11r_harness.Workloads.spec_of
        ~base_conf:(validated (Conf.tsan11rec ~strategy:co.co_strategy ()))
        w
    in
    let report =
      T11r_harness.Explore.explore ~jobs:co.co_jobs ~deadline_s:co.co_deadline
        ?tick_budget:co.co_tick_budget ~retries:co.co_retries
        ?journal:co.co_journal ~cancel spec ~n:co.co_runs
    in
    Fmt.pr "%a" T11r_harness.Explore.pp report;
    if Atomic.get interrupted then begin
      (match co.co_journal with
      | Some j -> Fmt.pr "interrupted; resume with --resume %s@." j
      | None ->
          Fmt.pr
            "interrupted (no journal — partial results only; use --journal \
             FILE next time)@.");
      exit 130
    end
  in
  Cmd.v
    (Cmd.info "explore" ~exits:campaign_exits
       ~doc:"Schedule-space exploration report: coverage, races, crashes")
    Term.(
      const run $ workload_arg
      $ common_term
          [ Strategy; Runs; Jobs; Deadline; Tick_budget; Retries; Journal ])

let check_cmd =
  let run name max_runs co =
    install_sigint ();
    let w = lookup_workload name in
    let build () =
      (* Systematic exploration is closed-world: setup runs against a
         throwaway world; workloads that need live endpoints fail as
         unsupported, exactly as before. *)
      w.Workloads.w_instance (World.create ~seed:0L ()) ()
    in
    let r =
      T11r_harness.Systematic.explore ~max_runs ~jobs:co.co_jobs
        ~dpor:co.co_dpor ~deadline_s:co.co_deadline
        ?tick_budget:co.co_tick_budget ?journal:co.co_journal ~cancel ~build
        ()
    in
    Fmt.pr "%a" T11r_harness.Systematic.pp r;
    if Atomic.get interrupted then begin
      (match co.co_journal with
      | Some j -> Fmt.pr "interrupted; resume with --resume %s@." j
      | None ->
          Fmt.pr
            "interrupted (no journal — progress lost; use --journal FILE \
             next time)@.");
      exit 130
    end;
    exit
      (if r.racy_schedules > 0 || r.deadlock_schedules > 0 || r.crash_schedules > 0
       then 1
       else 0)
  in
  let max_runs =
    Arg.(
      value & opt int 2000
      & info [ "max-runs" ] ~docv:"N" ~doc:"Schedule budget for the DFS.")
  in
  Cmd.v
    (Cmd.info "check" ~exits:campaign_exits
       ~doc:
         "Bounded systematic exploration (stateless model checking) of a \
          closed workload")
    Term.(
      const run $ workload_arg $ max_runs
      $ common_term [ Jobs; Journal; Deadline; Tick_budget; Dpor ])

let icb_cmd =
  let run name max_bound corpus co =
    let w = lookup_workload name in
    let corpus =
      match corpus with
      | None -> None
      | Some dir -> (
          match Guided.load_corpus dir with
          | Some c ->
              Fmt.pr "seeding from corpus %s (%d seed(s))@." dir
                (T11r_harness.Corpus.size c);
              Some c
          | None ->
              Fmt.epr "no readable corpus snapshots in %s; searching blind@." dir;
              None)
    in
    let r =
      T11r_harness.Minimize.find_bug ~max_bound ~deadline_s:co.co_deadline
        ?tick_budget:co.co_tick_budget ?corpus
        ~build:(fun () -> w.Workloads.w_instance (World.create ~seed:0L ()) ())
        ()
    in
    Fmt.pr "%a@." T11r_harness.Minimize.pp r;
    exit (match r with T11r_harness.Minimize.Found _ -> 1 | _ -> 0)
  in
  let max_bound =
    Arg.(
      value & opt int 4
      & info [ "max-bound" ] ~docv:"B" ~doc:"Largest preemption bound to try.")
  in
  let corpus_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Seed the search from a guided-hunt corpus directory: its \
             proven seed pairs are tried first at every bound.")
  in
  Cmd.v
    (Cmd.info "icb"
       ~doc:
         "Iterative context bounding: find the smallest preemption bound \
          that exposes a failure")
    Term.(
      const run $ workload_arg $ max_bound $ corpus_opt
      $ common_term [ Deadline; Tick_budget ])

let trace_cmd =
  let run name co demo diff out capacity =
    let w = lookup_workload name in
    if diff && demo = None then
      usage "--diff needs a recording: pass --demo DIR";
    let mode =
      match demo with Some d -> Conf.Replay d | None -> Conf.Free
    in
    let conf, world, build =
      prepare ~w
        ~conf:(base_conf ~tool:"tsan11rec" ~strategy:co.co_strategy)
        ~seed:co.co_seed ~env_seed:co.co_env_seed ~mode ()
    in
    let conf = Conf.with_trace conf ~capacity in
    (* --diff: survive divergences (counting them) so the report covers
       the whole run, not just the prefix before the first mismatch. *)
    let conf =
      if diff then Conf.with_on_desync conf Conf.Resync else conf
    in
    let conf = validated conf in
    let r = Interp.run ~world conf (build ()) in
    let json =
      T11r_obs.Chrome.export ~thread_names:r.Interp.thread_names
        ~events:r.Interp.events ()
    in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    Fmt.pr "outcome:   %a@." Interp.pp_outcome r.outcome;
    Fmt.pr "metrics:   %a@." T11r_obs.Metrics.pp r.Interp.metrics;
    Fmt.pr "events:    %d captured%s -> %s (load in Perfetto or chrome://tracing)@."
      (List.length r.Interp.events)
      (if r.Interp.events_dropped > 0 then
         Fmt.str " (%d older dropped: ring full, raise --capacity)"
           r.Interp.events_dropped
       else "")
      out;
    (if demo <> None then
       match r.Interp.trace_divergence with
       | None -> Fmt.pr "replay:    faithful (no divergence)@."
       | Some msg ->
           Fmt.pr "replay:    DIVERGED: %s@." msg;
           if r.Interp.desync_count > 0 then
             Fmt.pr "           %d divergence(s) over the whole run@."
               r.Interp.desync_count;
           List.iter
             (fun d -> Fmt.pr "%a@." Interp.pp_divergence d)
             r.Interp.divergences);
    exit (exit_of r)
  in
  let demo_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "demo"; "d" ] ~docv:"DIR"
          ~doc:"Replay this recorded demo instead of a live run.")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "With --demo: continue through divergences (resync) and print a \
             divergence report comparing the replay against the recording.")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the Chrome trace-event JSON.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Event ring-buffer capacity (oldest events drop beyond it).")
  in
  Cmd.v
    (Cmd.info "trace" ~exits:outcome_exits
       ~doc:
         "Run (or replay) a workload with event tracing and export a \
          Perfetto-loadable Chrome trace")
    Term.(
      const run $ workload_arg
      $ common_term [ Strategy; Seed; Env_seed ]
      $ demo_opt $ diff_flag $ out_arg $ capacity_arg)

(* predict: offline predictive race analysis — sound HB relaxation plus
   lockset filtering over recorded decision metadata, with optional
   witness verification. The soundness contract is visible in the exit
   discipline: only pairs a guided replay actually confirmed are
   surfaced as races (exit 1); May pairs and refuted Must pairs are
   always labelled "not a race" and never affect the exit code. *)
let predict_cmd =
  let run wl_opt co demo journal verify corpus attempts =
    let verify_analysis ~app ~recorded_seeds analysis =
      let w = lookup_workload app in
      let base =
        validated (Conf.with_policy (Conf.tsan11rec ()) w.Workloads.w_policy)
      in
      (* Every verification attempt rebuilds the same deterministic
         world the recording ran in (--env-seed), so the report is a
         pure function of (analysis, seeds) — byte-identical at every
         --jobs. *)
      let instance () =
        let world = World.create ~seed:(Int64.of_int co.co_env_seed) () in
        let build = w.Workloads.w_instance world in
        (world, build ())
      in
      let rep =
        Predictor.verify ~jobs:co.co_jobs ~attempts ?recorded_seeds
          ~base_conf:base ~instance analysis
      in
      Fmt.pr "%a@." Predictor.pp rep;
      (match corpus with
      | Some dir ->
          let c0 = Option.value (Guided.load_corpus dir) ~default:Corpus.empty in
          let c, added = Predictor.admit c0 rep in
          if added > 0 then Guided.save_corpus dir c;
          Fmt.pr
            "corpus:    %d witness(es) admitted to %s (hunt --guided and icb \
             will seed from them)@."
            added dir
      | None -> ());
      rep
    in
    if attempts < 1 then usage "--attempts must be >= 1 (got %d)" attempts;
    match journal with
    | Some path ->
        let inputs =
          try Predictor.inputs_of_journal path
          with Invalid_argument msg -> usage "%s" msg
        in
        if inputs = [] then begin
          Fmt.epr
            "no journaled run carries decision metadata — run the campaign \
             under a guided-strategy configuration to capture it@.";
          exit 3
        end;
        let s = Predictor.fold_inputs inputs in
        Fmt.pr "%a@." Predictor.pp_summary s;
        Fmt.pr "digest:    %s@." (Predictor.summary_digest s);
        if verify then begin
          let app =
            match wl_opt with
            | Some n -> n
            | None ->
                usage "predict --journal --verify needs the WORKLOAD argument"
          in
          let rep =
            verify_analysis ~app ~recorded_seeds:None
              (Predictor.analysis_of_summary s)
          in
          exit (if rep.Predictor.r_confirmed > 0 then 1 else 0)
        end;
        exit 0
    | None -> (
        match Predictor.input_of_demo ~dir:demo with
        | Error msg ->
            Fmt.epr "%s@." msg;
            exit 3
        | Ok input ->
            let d =
              match Demo.load_result ~dir:demo with
              | Ok d -> d
              | Error c ->
                  Fmt.epr "corrupt demo: %s@." (Demo.corruption_to_string c);
                  exit 3
            in
            let analysis = Predict.analyze input in
            Fmt.pr "%a@." Predict.pp analysis;
            Fmt.pr "digest:    %s@." (Predict.digest analysis);
            if verify then begin
              let app = Option.value wl_opt ~default:d.Demo.meta.Demo.app in
              let rep =
                verify_analysis ~app
                  ~recorded_seeds:
                    (Some (d.Demo.meta.Demo.seed1, d.Demo.meta.Demo.seed2))
                  analysis
              in
              exit (if rep.Predictor.r_confirmed > 0 then 1 else 0)
            end;
            exit 0)
  in
  let wl_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workload to verify against (defaults to the demo's recorded \
             app; required with $(b,--journal --verify)).")
  in
  let pjournal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Analyse every decision-carrying run of a campaign journal \
             instead of a single demo, deduplicating predicted pairs \
             across runs in run-index order.")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Execute each Must pair's witness schedule under the guided \
             strategy (adaptive prefix repair, recorded seeds first, then \
             a deterministic seed sweep). Confirmed pairs are reported as \
             races (exit 1); refuted ones never are.")
  in
  let pcorpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "With $(b,--verify): admit confirmed witness schedules \
             (guided prefix + seeds + coverage) into the guided corpus in \
             $(docv), where $(b,hunt --guided) and $(b,icb) pick them up.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 48
      & info [ "attempts" ] ~docv:"N"
          ~doc:"With $(b,--verify): execution budget per predicted pair.")
  in
  let exits =
    [
      Cmd.Exit.info 0
        ~doc:"analysis (and verification, if requested) found no confirmed race.";
      Cmd.Exit.info 1 ~doc:"at least one predicted race was confirmed by replay.";
      Cmd.Exit.info 3
        ~doc:
          "the demo is corrupt, carries no decision metadata, or the \
           journal holds none.";
    ]
    @ defaults_sans_ok
  in
  Cmd.v
    (Cmd.info "predict" ~exits
       ~doc:
         "Predict races offline from recorded decision metadata (sound \
          HB-relaxation + lockset), optionally verifying each prediction \
          with a guided witness replay")
    Term.(
      const run $ wl_opt
      $ common_term [ Env_seed; Jobs ]
      $ demo_arg $ pjournal_arg $ verify_flag $ pcorpus_arg $ attempts_arg)

let demo_info_cmd =
  let run dir =
    match Demo.load ~dir with
    | d ->
        Fmt.pr "%a@." Demo.pp_summary d;
        Fmt.pr "  strategy:      %s@." d.meta.strategy;
        Fmt.pr "  seeds:         %Ld %Ld@." d.meta.seed1 d.meta.seed2;
        Fmt.pr "  syscall bytes: %d@." (Demo.syscall_bytes d);
        Fmt.pr "  total bytes:   %d@." (Demo.size_bytes d);
        Fmt.pr "  integrity:     %s@."
          (if Sys.file_exists (Filename.concat dir "MANIFEST") then
             "verified (MANIFEST + per-file checksums)"
           else "legacy recording (no MANIFEST; line formats checked)");
        (* Decision metadata: present only on guided-strategy
           recordings, and the precondition for `predict'. *)
        (match Demo.read_aux ~dir "DECISIONS" with
        | [] ->
            Fmt.pr
              "  decisions:     none — re-record under the guided strategy \
               (record --guided) to enable prediction@."
        | lines -> (
            match Predict.decode_input lines with
            | None -> Fmt.pr "  decisions:     malformed DECISIONS metadata@."
            | Some input ->
                let kinds = Hashtbl.create 8 in
                Array.iter
                  (fun (s : Predict.step) ->
                    let k =
                      match s.Predict.s_foot with
                      | Predict.P_local -> "local"
                      | Predict.P_atomic _ -> "atomic"
                      | Predict.P_fence -> "fence"
                      | Predict.P_sync _ -> "sync"
                      | Predict.P_spawn _ -> "spawn"
                      | Predict.P_join _ -> "join"
                      | Predict.P_syscall _ -> "syscall"
                      | Predict.P_global -> "global"
                    in
                    Hashtbl.replace kinds k
                      (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0))
                  input.Predict.steps;
                let ks =
                  Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
                  |> List.sort compare
                  |> List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v)
                  |> String.concat " "
                in
                Fmt.pr
                  "  decisions:     %d step(s), %d access(es), %d observed \
                   race(s) — predict-ready (%s)@."
                  (Array.length input.Predict.steps)
                  (Array.length input.Predict.accs)
                  (List.length input.Predict.observed)
                  ks))
    | exception Demo.Corrupt c ->
        Fmt.epr "corrupt demo: %s@." (Demo.corruption_to_string c);
        Fmt.epr "(replay --salvage can recover the intact prefix)@.";
        exit 3
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Demo directory")
  in
  let exits =
    Cmd.Exit.info 3 ~doc:"the demo directory is corrupt or unreadable."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "demo-info" ~exits
       ~doc:"Summarise and integrity-check a recorded demo")
    Term.(const run $ dir)

let () =
  (* Opt-in startup GC: sweep temp directories stranded by SIGKILLed
     earlier processes (recognised by prefix + dead pid in the name). *)
  (match Sys.getenv_opt "T11R_TMP_GC" with
  | Some "1" ->
      List.iter
        (fun prefix ->
          match T11r_util.Tmp.gc ~prefix () with
          | [] -> ()
          | removed ->
              Fmt.epr "tmp-gc: removed %d stale %s.* director%s@."
                (List.length removed) prefix
                (if List.length removed = 1 then "y" else "ies"))
        [ "t11r"; "faultsweep" ]
  | _ -> ());
  let doc = "sparse record and replay with controlled scheduling" in
  let info = Cmd.info "tsan11rec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; record_cmd; replay_cmd; hunt_cmd; explore_cmd;
            check_cmd; icb_cmd; trace_cmd; predict_cmd; demo_info_cmd;
          ]))
