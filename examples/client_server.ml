(* The paper's Figure 2 scenario end to end: a client that polls a
   server, processes requests under a mutex, and shuts down on SIGTERM.

   Demonstrates what the sparse demo captures: the thread interleaving
   (QUEUE), the poll/recv/send results (SYSCALL), the shutdown signal
   (SIGNAL) — and that replay then works "without having to connect to
   a real server" (§2): we replay against a server that sends garbage,
   and the session still comes out identical.

   Run with: dune exec examples/client_server.exe *)

module Conf = Tsan11rec.Conf
module Interp = Tsan11rec.Interp
module Demo = Tsan11rec.Demo
module World = T11r_env.World
module Fig2 = T11r_litmus.Fig2_client

let () =
  let cfg = { Fig2.default_config with requests = 8 } in

  Fmt.pr "== record: client connected to the real server ==@.";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fig2-demo" in
  let world = World.create ~seed:2024L () in
  let fd = Fig2.setup_world cfg world in
  let conf =
    Conf.with_seeds
      (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Record dir) ())
      11L 13L
  in
  let r1 = Interp.run ~world conf (Fig2.program ~cfg ~server_fd:fd ()) in
  Fmt.pr "outcome: %a@." Interp.pp_outcome r1.outcome;
  Fmt.pr "session: %s@." r1.output;
  let demo = Option.get r1.demo in
  Fmt.pr "demo: %a@." Demo.pp_summary demo;
  Fmt.pr "  SIGNAL entries: %d (the SIGTERM that ended the session)@."
    (List.length demo.signals);
  Fmt.pr "  SYSCALL entries: %d (every poll/recv/send result)@."
    (List.length demo.syscalls);

  Fmt.pr "@.== replay: server now sends completely different data ==@.";
  (* A hostile world: the server sends garbage on a different schedule
     and no signal is ever delivered. Replay doesn't care: recorded
     syscalls are served from the demo, the signal is re-raised
     synchronously at its recorded tick. *)
  let world2 = World.create ~seed:666L () in
  let garbage_peer =
    {
      World.on_receive = (fun _ _ -> []);
      spontaneous =
        (fun _ i ->
          if i < 50 then Some (10, Bytes.of_string "GARBAGE") else None);
    }
  in
  let fd2 = World.connect world2 garbage_peer in
  let conf2 = Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Replay dir) () in
  let r2 = Interp.run ~world:world2 conf2 (Fig2.program ~cfg ~server_fd:fd2 ()) in
  Fmt.pr "outcome: %a@." Interp.pp_outcome r2.outcome;
  Fmt.pr "session: %s@." r2.output;
  Fmt.pr "synchronised: %b@." (not r2.soft_desync);
  assert (r1.output = r2.output);
  Fmt.pr "@.replayed session is byte-identical to the recording.@."
