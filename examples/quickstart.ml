(* Quickstart: write a concurrent program against the VM API, find a
   weak-memory race with controlled random scheduling, then record and
   replay the buggy execution.

   Run with: dune exec examples/quickstart.exe *)

open T11r_vm
module Conf = Tsan11rec.Conf
module Interp = Tsan11rec.Interp
module World = T11r_env.World

(* A message-passing bug: the flag is published with a relaxed store,
   so the consumer can observe the flag without observing the data. *)
let buggy_program () =
  Api.program ~name:"quickstart" (fun () ->
      let data = Api.Var.create ~name:"data" 0 in
      let flag = Api.Atomic.create ~name:"flag" 0 in
      let producer =
        Api.Thread.spawn ~name:"producer" (fun () ->
            Api.work 50;
            Api.Var.set data 42;
            (* BUG: should be ~mo:Release *)
            Api.Atomic.store ~mo:Relaxed flag 1)
      in
      let consumer =
        Api.Thread.spawn ~name:"consumer" (fun () ->
            (* BUG: should be ~mo:Acquire *)
            if Api.Atomic.load ~mo:Relaxed flag = 1 then
              Api.Sys_api.print (Printf.sprintf "got %d" (Api.Var.get data)))
      in
      Api.Thread.join producer;
      Api.Thread.join consumer)

let () =
  Fmt.pr "== 1. hunt for the race with controlled random scheduling ==@.";
  let racy_seed = ref None in
  for seed = 1 to 100 do
    if !racy_seed = None then begin
      let conf =
        Conf.with_seeds
          (Conf.tsan11rec ~strategy:Conf.Random ())
          (Int64.of_int seed) 99L
      in
      let r =
        Interp.run ~world:(World.create ~seed:7L ()) conf (buggy_program ())
      in
      if r.race_count > 0 then racy_seed := Some (seed, r)
    end
  done;
  let seed, r =
    match !racy_seed with
    | Some x -> x
    | None -> failwith "no racy schedule found (unexpected)"
  in
  Fmt.pr "seed %d exposes the bug:@." seed;
  List.iter (fun rep -> Fmt.pr "  %a@." T11r_race.Report.pp rep) r.races;

  Fmt.pr "@.== 2. record that execution ==@.";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "quickstart-demo" in
  let conf =
    Conf.with_seeds
      (Conf.tsan11rec ~strategy:Conf.Random ~mode:(Conf.Record dir) ())
      (Int64.of_int seed) 99L
  in
  let r1 =
    Interp.run ~world:(World.create ~seed:7L ()) conf (buggy_program ())
  in
  Fmt.pr "recorded: %a@." Tsan11rec.Demo.pp_summary (Option.get r1.demo);

  Fmt.pr "@.== 3. replay the demo: same schedule, same race ==@.";
  let conf =
    Conf.tsan11rec ~strategy:Conf.Random ~mode:(Conf.Replay dir) ()
  in
  let r2 =
    Interp.run ~world:(World.create ~seed:888L ()) conf (buggy_program ())
  in
  Fmt.pr "replay outcome: %a, races: %d, synchronised: %b@." Interp.pp_outcome
    r2.outcome r2.race_count (not r2.soft_desync);
  assert (r2.races = r1.races);
  assert (r2.trace = r1.trace);
  Fmt.pr "replay trace identical to recording (%d critical sections)@."
    (List.length r2.trace)
