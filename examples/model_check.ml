(* Bounded systematic exploration — the "stateless model checking"
   heritage of controlled scheduling (§2 of the paper), turned into a
   bug-finding and bug-FIXING loop:

   1. Exhaustively explore the buggy Dekker protocol: every schedule is
      executed once; the racy ones are found, not sampled.
   2. A first "fix" (adding the missing fence but keeping the exit-flag
      resets) is model-checked and REJECTED: some schedule still races,
      because a relaxed read of the reset re-admits the peer.
   3. The real fix passes: the schedule space is exhausted with zero
      races — a bounded verification.
   4. The same treatment guarantees finding the AB-BA deadlock that
      random testing only sometimes hits.

   Run with: dune exec examples/model_check.exe *)

open T11r_vm
module Systematic = T11r_harness.Systematic
module Registry = T11r_litmus.Registry

(* Step 2's tempting-but-wrong fix: both fences present, but the exit
   protocol still resets the flags. *)
let half_fixed_dekker () =
  Api.program ~name:"dekker-half-fixed" (fun () ->
      let shared = Api.Var.create ~name:"critical" 0 in
      let flag1 = Api.Atomic.create ~name:"flag1" 0 in
      let flag2 = Api.Atomic.create ~name:"flag2" 0 in
      let t1 =
        Api.Thread.spawn ~name:"T1" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag1 1;
            Api.Atomic.fence Seq_cst;
            if Api.Atomic.load ~mo:Relaxed flag2 = 0 then Api.Var.incr shared;
            Api.Atomic.store ~mo:Release flag1 0)
      in
      let t2 =
        Api.Thread.spawn ~name:"T2" (fun () ->
            Api.Atomic.store ~mo:Relaxed flag2 1;
            Api.Atomic.fence Seq_cst;
            if Api.Atomic.load ~mo:Relaxed flag1 = 0 then Api.Var.incr shared;
            Api.Atomic.store ~mo:Release flag2 0)
      in
      Api.Thread.join t1;
      Api.Thread.join t2)

let abba () =
  Api.program ~name:"abba" (fun () ->
      let a = Api.Mutex.create ~name:"A" () in
      let b = Api.Mutex.create ~name:"B" () in
      let t1 =
        Api.Thread.spawn (fun () ->
            Api.Mutex.lock a;
            Api.Mutex.lock b;
            Api.Mutex.unlock b;
            Api.Mutex.unlock a)
      in
      let t2 =
        Api.Thread.spawn (fun () ->
            Api.Mutex.lock b;
            Api.Mutex.lock a;
            Api.Mutex.unlock a;
            Api.Mutex.unlock b)
      in
      Api.Thread.join t1;
      Api.Thread.join t2)

let () =
  Fmt.pr "== 1. the buggy dekker-fences, exhaustively ==@.";
  let buggy = Option.get (Registry.find "dekker-fences") in
  Fmt.pr "%a@." Systematic.pp (Systematic.explore ~max_runs:5000 ~build:buggy.build ());

  Fmt.pr "== 2. a tempting fix: add the fence, keep the flag resets ==@.";
  let r = Systematic.explore ~max_runs:5000 ~build:half_fixed_dekker () in
  Fmt.pr "%a@." Systematic.pp r;
  if r.racy_schedules > 0 then
    Fmt.pr "REJECTED: a relaxed read of the exit-protocol reset re-admits@.\
            the peer without synchronising with the critical section.@.@.";

  Fmt.pr "== 3. the real fix ==@.";
  let fixed =
    List.find (fun (e : Registry.entry) -> e.name = "dekker-fences-fixed")
      Registry.fixed
  in
  let r = Systematic.explore ~max_runs:5000 ~build:fixed.build () in
  Fmt.pr "%a@." Systematic.pp r;
  assert (r.complete && r.racy_schedules = 0);
  Fmt.pr "VERIFIED within bounds: no schedule races.@.@.";

  Fmt.pr "== 4. the AB-BA deadlock is *guaranteed* to be found ==@.";
  let r = Systematic.explore ~build:abba () in
  Fmt.pr "%a@." Systematic.pp r;
  assert (r.deadlock_schedules > 0);

  Fmt.pr "@.== 5. and reported as a *potential* deadlock on clean runs ==@.";
  (* A single run that happens not to deadlock still exposes the
     inconsistent lock order through the lock-order graph. *)
  let conf =
    Tsan11rec.Conf.with_seeds
      (Tsan11rec.Conf.tsan11rec ~strategy:Tsan11rec.Conf.Queue ())
      1L 2L
  in
  let r =
    Tsan11rec.Interp.run
      ~world:(T11r_env.World.create ~seed:3L ())
      conf (abba ())
  in
  assert (r.outcome = Tsan11rec.Interp.Completed);
  List.iter
    (fun c ->
      print_string
        (T11r_race.Reportfmt.lock_cycle ~thread_names:r.thread_names c))
    r.lock_cycles;

  Fmt.pr "@.== 6. iterative context bounding: how complex is the bug? ==@.";
  (match
     T11r_harness.Minimize.find_bug ~failure:T11r_harness.Minimize.Deadlock
       ~build:abba ()
   with
  | T11r_harness.Minimize.Found f ->
      Fmt.pr "%a@." T11r_harness.Minimize.pp (T11r_harness.Minimize.Found f);
      Fmt.pr "one preemption suffices — replay it under pb:%d with that seed.@."
        f.bound
  | nf -> Fmt.pr "%a@." T11r_harness.Minimize.pp nf)
