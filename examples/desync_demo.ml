(* §4.4/§5.5: the limits of sparsity, and the knobs that move them.

   - htop-like reads /proc: the default policy leaves file reads
     unrecorded, so replay shows different numbers (soft desync);
     extending the policy fixes it.
   - sqlite-like branches on pointer values: memory layout is never
     recorded, so replay desynchronises; the rr model (which enforces
     layout) and the deterministic-allocator workaround both replay it
     faithfully.

   Run with: dune exec examples/desync_demo.exe *)

module Conf = Tsan11rec.Conf
module Interp = Tsan11rec.Interp
module Policy = Tsan11rec.Policy
module World = T11r_env.World
open T11r_apps

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let describe label (r : Interp.result) =
  Fmt.pr "  %-28s %-12s %s@." label
    (Format.asprintf "%a" Interp.pp_outcome r.outcome)
    (match r.outcome with
    | Interp.Completed when r.soft_desync -> "SOFT DESYNC (output differs)"
    | Interp.Completed -> "synchronised"
    | Interp.Hard_desync _ -> "HARD DESYNC (constraint violated)"
    | _ -> "")

let () =
  Fmt.pr "== htop-like: /proc sampling and per-application policies ==@.";
  let htop policy =
    let dir = tmp "htop-demo" in
    let mk seed =
      let w = World.create ~seed () in
      Htop_like.setup_world w;
      w
    in
    let rc =
      Conf.with_policy
        (Conf.with_seeds
           (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Record dir) ())
           1L 2L)
        policy
    in
    let r1 = Interp.run ~world:(mk 5L) rc (Htop_like.program ()) in
    let pc =
      Conf.with_policy
        (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Replay dir) ())
        policy
    in
    let r2 = Interp.run ~world:(mk 60L) pc (Htop_like.program ()) in
    (r1, r2)
  in
  let r1, r2 = htop Policy.default in
  Fmt.pr "recorded samples: %s@." r1.output;
  Fmt.pr "replayed samples: %s@." r2.output;
  describe "default policy" r2;
  let _, r2' = htop Policy.with_proc in
  describe "policy extended to /proc" r2';

  Fmt.pr "@.== sqlite-like: memory-layout nondeterminism (§5.5) ==@.";
  let dir = tmp "sqlite-demo" in
  (* tsan11rec, sparse: layout is not recorded. *)
  let rc =
    Conf.with_seeds
      (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Record dir) ())
      1L 2L
  in
  let r1 =
    Interp.run ~world:(World.create ~seed:123L ()) rc (Sqlite_like.program ())
  in
  Fmt.pr "recorded walk: %s@." r1.output;
  let pc = Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Replay dir) () in
  let r2 =
    Interp.run ~world:(World.create ~seed:321L ()) pc (Sqlite_like.program ())
  in
  Fmt.pr "replayed walk: %s@." r2.output;
  describe "tsan11rec (sparse)" r2;

  (* The rr model enforces layout. *)
  let dir_rr = tmp "sqlite-rr-demo" in
  let r3 =
    Interp.run
      ~world:(T11r_rr.Rr.record_world ~seed:123L)
      (Conf.with_seeds (T11r_rr.Rr.record ~dir:dir_rr ()) 1L 2L)
      (Sqlite_like.program ())
  in
  ignore r3;
  let r4 =
    Interp.run
      ~world:(T11r_rr.Rr.replay_world ~seed:321L)
      (T11r_rr.Rr.replay ~dir:dir_rr ())
      (Sqlite_like.program ())
  in
  describe "rr model (enforces layout)" r4;

  (* The application-side workaround: a deterministic allocator. *)
  let dir_da = tmp "sqlite-da-demo" in
  let mk seed = World.create ~seed ~deterministic_alloc:true () in
  let r5 =
    Interp.run ~world:(mk 123L)
      (Conf.with_seeds
         (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Record dir_da) ())
         1L 2L)
      (Sqlite_like.program ())
  in
  ignore r5;
  let r6 =
    Interp.run ~world:(mk 321L)
      (Conf.tsan11rec ~strategy:Conf.Queue ~mode:(Conf.Replay dir_da) ())
      (Sqlite_like.program ())
  in
  describe "tsan11rec + deterministic alloc" r6;
  Fmt.pr
    "@.sparsity is a trade: what you refuse to record, you must either\n\
     not depend on, or pin down by other means.@."
