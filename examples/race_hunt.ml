(* A miniature Table 1: run the CDSchecker litmus benchmarks under
   uncontrolled tsan11 and both tsan11rec strategies, and watch which
   bugs each scheduler can pry out (§5.1).

   Run with: dune exec examples/race_hunt.exe *)

module Conf = Tsan11rec.Conf
module Runner = T11r_harness.Runner
open T11r_util

let () =
  let n = 200 in
  let table =
    Table.create ~title:(Printf.sprintf "Race rate over %d runs" n)
      ~headers:[ "benchmark"; "tsan11"; "tsan11rec rnd"; "tsan11rec queue" ]
  in
  let configs =
    [
      Conf.tsan11;
      Conf.tsan11rec ~strategy:Conf.Random ();
      Conf.tsan11rec ~strategy:Conf.Queue ();
    ]
  in
  List.iter
    (fun (e : T11r_litmus.Registry.entry) ->
      let cells =
        List.map
          (fun conf ->
            let spec = Runner.spec ~label:conf.Conf.name ~base_conf:conf e.build in
            let agg = Runner.run_many spec ~n in
            Printf.sprintf "%.1f%%" agg.race_rate)
          configs
      in
      Table.add_row table (e.name :: cells))
    T11r_litmus.Registry.all;
  Table.print table;
  print_endline
    "The random strategy exposes the barrier/rwlock/mcs/mpmc bugs that the\n\
     OS scheduler essentially never hits; chase-lev-deque needs the one\n\
     long owner-run schedule that arrival order produces and uniform\n\
     random almost never does; ms-queue races unconditionally."
