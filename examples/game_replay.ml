(* §5.4: recording and replaying games whose display traffic cannot be
   captured, and reproducing the historical Zandronum map-change bug.

   1. The games policy *ignores* ioctl: the display driver runs live in
      both record and replay (rr refuses these applications outright).
   2. We "play" multiplayer sessions while recording until the buggy
      client-server interaction fires, then replay the demo to get the
      crash back deterministically.

   Run with: dune exec examples/game_replay.exe *)

module Conf = Tsan11rec.Conf
module Interp = Tsan11rec.Interp
module Policy = Tsan11rec.Policy
module World = T11r_env.World
open T11r_apps

let games_conf ?mode strategy =
  Conf.with_policy (Conf.tsan11rec ~strategy ?mode ()) Policy.games

let () =
  Fmt.pr "== playability: QuakeSpasm vs Zandronum (Table 5 / §5.4) ==@.";
  let show name p conf =
    let r = Interp.run ~world:(World.create ~seed:3L ()) conf (Game.program ~p ()) in
    Fmt.pr "  %-11s %-18s %6.1f fps  %s@." name conf.Conf.name
      (Game.mean_fps r.output)
      (match r.outcome with
      | Interp.Completed ->
          if Game.playable r.output then "playable" else "UNPLAYABLE"
      | o -> Format.asprintf "%a" Interp.pp_outcome o)
  in
  let qs = Game.quakespasm ~frames:60 ~fps_cap:None () in
  let za = Game.zandronum ~frames:60 () in
  show "quakespasm" qs (Conf.with_seeds (games_conf Conf.Random) 1L 2L);
  show "quakespasm" qs (Conf.with_seeds (games_conf Conf.Queue) 1L 2L);
  show "zandronum" za (Conf.with_seeds (games_conf Conf.Random) 1L 2L);
  show "zandronum" za (Conf.with_seeds (games_conf Conf.Queue) 1L 2L);
  show "zandronum" za (Conf.with_seeds Conf.rr_model 1L 2L);

  Fmt.pr "@.== hunting the Zandronum map-change bug while recording ==@.";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "zandronum-demo" in
  let record session_seed =
    let world = World.create ~seed:session_seed () in
    let fd = Zandronum_bug.setup_world Zandronum_bug.default_config world in
    let conf =
      Conf.with_seeds (games_conf ~mode:(Conf.Record dir) Conf.Queue) 5L 6L
    in
    Interp.run ~world conf (Zandronum_bug.program ~server_fd:fd ())
  in
  let rec hunt i =
    if i > 100 then failwith "bug never fired"
    else begin
      let r = record (Int64.of_int (i * 313)) in
      match r.Interp.outcome with
      | Interp.Crashed (_, msg) ->
          Fmt.pr "session %d crashed: %s@." i msg;
          (i, msg, r)
      | _ ->
          Fmt.pr "session %d: clean (%d packets applied)@." i
            (String.length r.output);
          hunt (i + 1)
    end
  in
  let _, msg, r1 = hunt 1 in
  Fmt.pr "demo: %a@." Tsan11rec.Demo.pp_summary (Option.get r1.demo);

  Fmt.pr "@.== replaying the crashing session ==@.";
  let world = World.create ~seed:777L () in
  let fd = Zandronum_bug.setup_world Zandronum_bug.default_config world in
  let conf = games_conf ~mode:(Conf.Replay dir) Conf.Queue in
  let r2 = Interp.run ~world conf (Zandronum_bug.program ~server_fd:fd ()) in
  (match r2.Interp.outcome with
  | Interp.Crashed (_, msg2) ->
      assert (msg = msg2);
      Fmt.pr "replay reproduced the crash: %s@." msg2
  | o -> Fmt.pr "unexpected replay outcome: %a@." Interp.pp_outcome o);
  Fmt.pr "@.the bug can now be replayed as many times as debugging needs.@."
